//! Ground-truth forward pass, written as the straightforward sliding-window
//! loop nest (Sec. 3 of the paper). Every parallelization scheme in the
//! compiler/functional crates is validated against these functions.

use crate::error::ModelError;
use crate::layer::{ConvParams, EltwiseOp, FcParams, PoolKind, PoolParams};
use crate::tensor::{ConvWeights, Tensor3};

/// Direct convolution: for every output pixel, slide the `k x k x Din/groups`
/// kernel across the zero-padded input and accumulate.
///
/// # Errors
///
/// Returns a [`ModelError`] when the input/weight shapes disagree with
/// `params`.
///
/// # Examples
///
/// ```
/// use cbrain_model::{reference, ConvParams, ConvWeights, Tensor3, TensorShape};
///
/// let params = ConvParams::new(1, 1, 2, 1, 0);
/// let input = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32);
/// let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
/// let out = reference::conv_forward(&input, &weights, None, &params)?;
/// assert_eq!(out.at(0, 0, 0), 0.0 + 1.0 + 2.0 + 3.0);
/// # Ok::<(), cbrain_model::ModelError>(())
/// ```
pub fn conv_forward(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
) -> Result<Tensor3, ModelError> {
    params.validate("<conv>")?;
    let out_shape = params.output_shape(input.shape())?;
    if weights.len() != params.weight_count() {
        return Err(ModelError::ShapeMismatch {
            context: "convolution weights".to_owned(),
            expected: format!("{} values", params.weight_count()),
            found: format!("{} values", weights.len()),
        });
    }
    if let Some(b) = bias {
        if b.len() != params.out_maps {
            return Err(ModelError::ShapeMismatch {
                context: "convolution bias".to_owned(),
                expected: format!("{} values", params.out_maps),
                found: format!("{} values", b.len()),
            });
        }
    }

    let mut out = Tensor3::zeros(out_shape);
    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let pad = params.pad as isize;
    let in_shape = input.shape();
    if params.stride == 1 {
        // Row-wise path: for a unit stride every output row is an axpy
        // accumulation of shifted input rows. Vectorization runs *across*
        // independent output pixels, so each pixel still accumulates its
        // terms in the same `i -> ky -> kx` order as the per-pixel loop
        // below — the SIMD and scalar backends agree bit-for-bit.
        for o in 0..params.out_maps {
            let group = o / out_per_group;
            let in_base = group * in_per_group;
            let b = bias.map_or(0.0, |b| b[o]);
            for oy in 0..out_shape.height {
                let iy0 = oy as isize - pad;
                let row = out.row_mut(o, oy);
                row.fill(b);
                for i in 0..in_per_group {
                    for ky in 0..params.kernel {
                        let y = iy0 + ky as isize;
                        if y < 0 || y as usize >= in_shape.height {
                            continue;
                        }
                        let in_row = input.row(in_base + i, y as usize);
                        for kx in 0..params.kernel {
                            // Output columns whose tap `ox + kx - pad`
                            // lands inside the (unpadded) input row.
                            let lo = pad.saturating_sub(kx as isize).max(0) as usize;
                            let hi = (in_shape.width as isize + pad - kx as isize)
                                .clamp(0, out_shape.width as isize)
                                as usize;
                            if lo >= hi {
                                continue;
                            }
                            let x0 = (lo as isize + kx as isize - pad) as usize;
                            cbrain_simd::axpy(
                                &mut row[lo..hi],
                                weights.at(o, i, ky, kx),
                                &in_row[x0..x0 + (hi - lo)],
                            );
                        }
                    }
                }
            }
        }
        return Ok(out);
    }
    for o in 0..params.out_maps {
        let group = o / out_per_group;
        let in_base = group * in_per_group;
        let b = bias.map_or(0.0, |b| b[o]);
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut acc = b;
                let iy0 = (oy * params.stride) as isize - pad;
                let ix0 = (ox * params.stride) as isize - pad;
                for i in 0..in_per_group {
                    for ky in 0..params.kernel {
                        for kx in 0..params.kernel {
                            let v =
                                input.at_padded(in_base + i, iy0 + ky as isize, ix0 + kx as isize);
                            acc += v * weights.at(o, i, ky, kx);
                        }
                    }
                }
                *out.at_mut(o, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// Pooling: max or average over non-padded `p x p` windows at stride `sp`.
///
/// # Errors
///
/// Returns a [`ModelError`] if the window does not fit in the input.
pub fn pool_forward(input: &Tensor3, params: &PoolParams) -> Result<Tensor3, ModelError> {
    let out_shape = params.output_shape(input.shape())?;
    let mut out = Tensor3::zeros(out_shape);
    let in_shape = input.shape();
    for m in 0..out_shape.maps {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let y0 = oy * params.stride;
                let x0 = ox * params.stride;
                // Ceil mode lets the last window hang off the edge; clamp it.
                let y1 = (y0 + params.kernel).min(in_shape.height);
                let x1 = (x0 + params.kernel).min(in_shape.width);
                let mut acc = match params.kind {
                    PoolKind::Max => f32::NEG_INFINITY,
                    PoolKind::Average => 0.0,
                };
                let mut count = 0usize;
                for y in y0..y1 {
                    for x in x0..x1 {
                        let v = input.at(m, y, x);
                        match params.kind {
                            PoolKind::Max => acc = acc.max(v),
                            PoolKind::Average => acc += v,
                        }
                        count += 1;
                    }
                }
                *out.at_mut(m, oy, ox) = match params.kind {
                    PoolKind::Max => acc,
                    PoolKind::Average => acc / count as f32,
                };
            }
        }
    }
    Ok(out)
}

/// Fully-connected layer: `out[j] = bias[j] + sum_i in[i] * w[j][i]`, with
/// weights stored row-major by output feature.
///
/// # Errors
///
/// Returns a [`ModelError`] on any length mismatch.
pub fn fc_forward(
    input: &[f32],
    weights: &[f32],
    bias: Option<&[f32]>,
    params: &FcParams,
) -> Result<Vec<f32>, ModelError> {
    if input.len() != params.in_features {
        return Err(ModelError::ShapeMismatch {
            context: "fully-connected input".to_owned(),
            expected: format!("{} values", params.in_features),
            found: format!("{} values", input.len()),
        });
    }
    if weights.len() != params.in_features * params.out_features {
        return Err(ModelError::ShapeMismatch {
            context: "fully-connected weights".to_owned(),
            expected: format!("{} values", params.in_features * params.out_features),
            found: format!("{} values", weights.len()),
        });
    }
    if let Some(b) = bias {
        if b.len() != params.out_features {
            return Err(ModelError::ShapeMismatch {
                context: "fully-connected bias".to_owned(),
                expected: format!("{} values", params.out_features),
                found: format!("{} values", b.len()),
            });
        }
    }
    let mut out = Vec::with_capacity(params.out_features);
    for j in 0..params.out_features {
        let row = &weights[j * params.in_features..(j + 1) * params.in_features];
        out.push(bias.map_or(0.0, |b| b[j]) + cbrain_simd::dot(input, row));
    }
    Ok(out)
}

/// Elementwise merge of two same-shaped cubes (residual shortcut).
///
/// # Errors
///
/// Returns a [`ModelError::ShapeMismatch`] when the operand shapes differ.
///
/// # Examples
///
/// ```
/// use cbrain_model::{reference, EltwiseOp, Tensor3, TensorShape};
///
/// let a = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, y, x| (y + x) as f32);
/// let b = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, _, _| 1.0);
/// let out = reference::eltwise_forward(&a, &b, EltwiseOp::Add)?;
/// assert_eq!(out.at(0, 1, 1), 3.0);
/// # Ok::<(), cbrain_model::ModelError>(())
/// ```
pub fn eltwise_forward(a: &Tensor3, b: &Tensor3, op: EltwiseOp) -> Result<Tensor3, ModelError> {
    if a.shape() != b.shape() {
        return Err(ModelError::ShapeMismatch {
            context: "eltwise operands".to_owned(),
            expected: a.shape().to_string(),
            found: b.shape().to_string(),
        });
    }
    let mut data = a.as_slice().to_vec();
    match op {
        EltwiseOp::Add => cbrain_simd::add_assign(&mut data, b.as_slice()),
    }
    Ok(Tensor3::from_vec(a.shape(), data))
}

/// Unrolls the input for intra-kernel parallelization (im2col): every
/// `k x k` window of every input map becomes one contiguous run of `k*k`
/// values. Returns `(buffer, windows_y, windows_x)`; the buffer layout is
/// `map-major, then window row, then window column, then kernel row-major`.
///
/// The duplication factor of this transform is the paper's Equation 1.
///
/// # Errors
///
/// Returns a [`ModelError`] if the kernel does not fit.
pub fn unroll_windows(
    input: &Tensor3,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<(Vec<f32>, usize, usize), ModelError> {
    let shape = input.shape();
    let padded_h = shape.height + 2 * pad;
    let padded_w = shape.width + 2 * pad;
    if kernel > padded_h || kernel > padded_w || kernel == 0 || stride == 0 {
        return Err(ModelError::KernelExceedsInput {
            layer: "<unroll>".to_owned(),
            kernel,
            padded_extent: padded_h.min(padded_w),
        });
    }
    let wy = (padded_h - kernel) / stride + 1;
    let wx = (padded_w - kernel) / stride + 1;
    let mut out = Vec::with_capacity(shape.maps * wy * wx * kernel * kernel);
    for m in 0..shape.maps {
        for oy in 0..wy {
            for ox in 0..wx {
                let y0 = (oy * stride) as isize - pad as isize;
                let x0 = (ox * stride) as isize - pad as isize;
                for ky in 0..kernel {
                    let y = y0 + ky as isize;
                    if y < 0 || y as usize >= shape.height {
                        out.resize(out.len() + kernel, 0.0);
                        continue;
                    }
                    // The in-bounds columns of this window row form one
                    // contiguous slice of the image row; copy it whole.
                    let lo = ((-x0).max(0) as usize).min(kernel);
                    let hi =
                        ((shape.width as isize - x0).clamp(0, kernel as isize) as usize).max(lo);
                    out.resize(out.len() + lo, 0.0);
                    if lo < hi {
                        let x = (x0 + lo as isize) as usize;
                        out.extend_from_slice(&input.row(m, y as usize)[x..x + (hi - lo)]);
                    }
                    out.resize(out.len() + (kernel - hi), 0.0);
                }
            }
        }
    }
    Ok((out, wy, wx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::TensorShape;

    fn ramp(shape: TensorShape) -> Tensor3 {
        let mut i = 0.0f32;
        Tensor3::from_fn(shape, |_, _, _| {
            i += 1.0;
            i
        })
    }

    #[test]
    fn identity_kernel_convolution() {
        // A 1x1 kernel of weight 1 reproduces the input map.
        let params = ConvParams::new(1, 1, 1, 1, 0);
        let input = ramp(TensorShape::new(1, 4, 4));
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let out = conv_forward(&input, &weights, None, &params).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn box_filter_sums_window() {
        let params = ConvParams::new(1, 1, 2, 1, 0);
        let input = Tensor3::from_fn(TensorShape::new(1, 2, 3), |_, y, x| (y * 3 + x) as f32);
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let out = conv_forward(&input, &weights, None, &params).unwrap();
        assert_eq!(out.shape(), TensorShape::new(1, 1, 2));
        assert_eq!(out.at(0, 0, 0), 0.0 + 1.0 + 3.0 + 4.0);
        assert_eq!(out.at(0, 0, 1), 1.0 + 2.0 + 4.0 + 5.0);
    }

    #[test]
    fn stride_skips_positions() {
        let params = ConvParams::new(1, 1, 2, 2, 0);
        let input = Tensor3::from_fn(TensorShape::new(1, 4, 4), |_, y, x| (y * 4 + x) as f32);
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let out = conv_forward(&input, &weights, None, &params).unwrap();
        assert_eq!(out.shape(), TensorShape::new(1, 2, 2));
        // Window anchored at (2, 2): 10 + 11 + 14 + 15.
        assert_eq!(out.at(0, 1, 1), 50.0);
    }

    #[test]
    fn padding_adds_zero_border() {
        let params = ConvParams::new(1, 1, 3, 1, 1);
        let input = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, _, _| 1.0);
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let out = conv_forward(&input, &weights, None, &params).unwrap();
        assert_eq!(out.shape(), TensorShape::new(1, 2, 2));
        // Corner windows see 4 ones, everything else padded zeros.
        assert_eq!(out.at(0, 0, 0), 4.0);
    }

    #[test]
    fn bias_is_added_per_output_map() {
        let params = ConvParams::new(1, 2, 1, 1, 0);
        let input = Tensor3::zeros(TensorShape::new(1, 2, 2));
        let weights = ConvWeights::zeros(&params);
        let out = conv_forward(&input, &weights, Some(&[1.5, -2.0]), &params).unwrap();
        assert_eq!(out.at(0, 1, 1), 1.5);
        assert_eq!(out.at(1, 0, 0), -2.0);
    }

    #[test]
    fn grouped_conv_blocks_cross_talk() {
        // Two groups; weights are 1. Output map 0 must only see input map 0.
        let params = ConvParams::grouped(2, 2, 1, 1, 0, 2);
        let input = Tensor3::from_fn(TensorShape::new(2, 1, 1), |m, _, _| (m + 1) as f32 * 10.0);
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let out = conv_forward(&input, &weights, None, &params).unwrap();
        assert_eq!(out.at(0, 0, 0), 10.0);
        assert_eq!(out.at(1, 0, 0), 20.0);
    }

    #[test]
    fn conv_rejects_wrong_weight_len() {
        let params = ConvParams::new(1, 1, 3, 1, 0);
        let other = ConvParams::new(1, 1, 2, 1, 0);
        let input = Tensor3::zeros(TensorShape::new(1, 4, 4));
        let weights = ConvWeights::zeros(&other);
        assert!(conv_forward(&input, &weights, None, &params).is_err());
    }

    #[test]
    fn max_pool() {
        let input = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32);
        let out = pool_forward(&input, &PoolParams::max(2, 2)).unwrap();
        assert_eq!(out.at(0, 0, 0), 3.0);
    }

    #[test]
    fn average_pool() {
        let input = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32);
        let out = pool_forward(&input, &PoolParams::average(2, 2)).unwrap();
        assert_eq!(out.at(0, 0, 0), 1.5);
    }

    #[test]
    fn ceil_mode_pool_clamps_edge_window() {
        // 5-wide input, k=2, s=2, ceil: 3 windows; last window has 1 column.
        let input = Tensor3::from_fn(TensorShape::new(1, 5, 5), |_, y, x| (y * 5 + x) as f32);
        let mut p = PoolParams::max(2, 2);
        p.ceil_mode = true;
        let out = pool_forward(&input, &p).unwrap();
        assert_eq!(out.shape(), TensorShape::new(1, 3, 3));
        assert_eq!(out.at(0, 2, 2), 24.0);
    }

    #[test]
    fn fc_matches_hand_computation() {
        let params = FcParams::new(3, 2);
        let input = [1.0, 2.0, 3.0];
        let weights = [1.0, 0.0, 0.0, 0.5, 0.5, 0.5];
        let out = fc_forward(&input, &weights, Some(&[0.0, 1.0]), &params).unwrap();
        assert_eq!(out, vec![1.0, 4.0]);
    }

    #[test]
    fn fc_rejects_bad_lengths() {
        let params = FcParams::new(3, 2);
        assert!(fc_forward(&[1.0; 2], &[0.0; 6], None, &params).is_err());
        assert!(fc_forward(&[1.0; 3], &[0.0; 5], None, &params).is_err());
        assert!(fc_forward(&[1.0; 3], &[0.0; 6], Some(&[0.0; 3]), &params).is_err());
    }

    #[test]
    fn eltwise_add_is_elementwise() {
        let a = ramp(TensorShape::new(2, 2, 2));
        let b = ramp(TensorShape::new(2, 2, 2));
        let out = eltwise_forward(&a, &b, EltwiseOp::Add).unwrap();
        for (o, x) in out.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(*o, 2.0 * x);
        }
    }

    #[test]
    fn eltwise_rejects_shape_mismatch() {
        let a = Tensor3::zeros(TensorShape::new(1, 2, 2));
        let b = Tensor3::zeros(TensorShape::new(1, 2, 3));
        assert!(eltwise_forward(&a, &b, EltwiseOp::Add).is_err());
    }

    #[test]
    fn unroll_duplication_matches_equation_1() {
        // 28x28 map, k=5, s=1: unrolled size is 24*24*25 (paper Sec. 4.1.2).
        let input = Tensor3::zeros(TensorShape::new(1, 28, 28));
        let (buf, wy, wx) = unroll_windows(&input, 5, 1, 0).unwrap();
        assert_eq!((wy, wx), (24, 24));
        assert_eq!(buf.len(), 24 * 24 * 25);
    }

    #[test]
    fn unrolled_windows_are_contiguous_and_correct() {
        let input = Tensor3::from_fn(TensorShape::new(1, 3, 3), |_, y, x| (y * 3 + x) as f32);
        let (buf, wy, wx) = unroll_windows(&input, 2, 1, 0).unwrap();
        assert_eq!((wy, wx), (2, 2));
        // First window is rows {0,1} x cols {0,1}.
        assert_eq!(&buf[0..4], &[0.0, 1.0, 3.0, 4.0]);
        // Last window is rows {1,2} x cols {1,2}.
        assert_eq!(&buf[12..16], &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn unroll_with_padding() {
        let input = Tensor3::from_fn(TensorShape::new(1, 2, 2), |_, _, _| 1.0);
        let (buf, wy, wx) = unroll_windows(&input, 3, 1, 1).unwrap();
        assert_eq!((wy, wx), (2, 2));
        // Each padded 3x3 window over a 2x2 ones-map sums to 4.
        let first: f32 = buf[0..9].iter().sum();
        assert_eq!(first, 4.0);
    }
}
