//! Per-layer and whole-network statistics: MACs, parameter counts and
//! activation footprints — the quantities tiling and batching decisions
//! hinge on.

use crate::layer::{Layer, LayerKind};
use crate::network::Network;
use crate::shape::{TensorShape, ELEM_BYTES};
use crate::ModelError;

/// Statistics of one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// Layer name.
    pub name: String,
    /// `"conv"`, `"pool"`, `"fc"` or `"add"`.
    pub kind: &'static str,
    /// Input shape.
    pub input: TensorShape,
    /// Output shape.
    pub output: TensorShape,
    /// Multiply-accumulate operations (window ops for pooling).
    pub macs: u64,
    /// Trainable parameters (weights + biases; 0 for pooling).
    pub params: u64,
    /// Weight footprint in bytes at the 16-bit datapath width.
    pub weight_bytes: u64,
}

impl LayerStats {
    /// Computes statistics for one layer.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from invalid layers.
    pub fn of(layer: &Layer) -> Result<Self, ModelError> {
        let output = layer.output_shape()?;
        let (kind, params) = match &layer.kind {
            LayerKind::Conv(p) => ("conv", (p.weight_count() + p.out_maps) as u64),
            LayerKind::Pool(_) => ("pool", 0),
            LayerKind::FullyConnected(p) => (
                "fc",
                (p.in_features * p.out_features + p.out_features) as u64,
            ),
            LayerKind::Eltwise(_) => ("add", 0),
        };
        Ok(Self {
            name: layer.name.clone(),
            kind,
            input: layer.input,
            output,
            macs: layer.macs()?,
            params,
            weight_bytes: params * ELEM_BYTES as u64,
        })
    }

    /// Activation working set (input + output) in bytes.
    pub const fn activation_bytes(&self) -> u64 {
        (self.input.bytes() + self.output.bytes()) as u64
    }
}

/// Statistics of a whole network.
///
/// # Examples
///
/// ```
/// use cbrain_model::{stats::NetworkStats, zoo};
///
/// let s = NetworkStats::of(&zoo::alexnet())?;
/// // AlexNet's famous ~61M parameters (58M of them in the classifier).
/// assert!(s.total_params > 55_000_000 && s.total_params < 65_000_000);
/// # Ok::<(), cbrain_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Network name.
    pub network: String,
    /// Per-layer statistics, in schedule order.
    pub layers: Vec<LayerStats>,
    /// Total MACs.
    pub total_macs: u64,
    /// Total trainable parameters.
    pub total_params: u64,
    /// Largest single-layer activation working set in bytes — the number
    /// that decides whether a layer fits the 2 MB buffer.
    pub peak_activation_bytes: u64,
}

impl NetworkStats {
    /// Computes statistics for a network.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from invalid layers.
    pub fn of(net: &Network) -> Result<Self, ModelError> {
        let layers: Vec<LayerStats> = net
            .layers()
            .iter()
            .map(LayerStats::of)
            .collect::<Result<_, _>>()?;
        Ok(Self {
            network: net.name().to_owned(),
            total_macs: layers.iter().map(|l| l.macs).sum(),
            total_params: layers.iter().map(|l| l.params).sum(),
            peak_activation_bytes: layers
                .iter()
                .map(LayerStats::activation_bytes)
                .max()
                .unwrap_or(0),
            layers,
        })
    }

    /// Fraction of parameters held by fully-connected layers — why
    /// batching pays on classifier-heavy networks.
    pub fn fc_param_fraction(&self) -> f64 {
        if self.total_params == 0 {
            return 0.0;
        }
        let fc: u64 = self
            .layers
            .iter()
            .filter(|l| l.kind == "fc")
            .map(|l| l.params)
            .sum();
        fc as f64 / self.total_params as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn alexnet_parameter_count() {
        let s = NetworkStats::of(&zoo::alexnet()).unwrap();
        // Grouped AlexNet: ~2.5M conv + ~58.6M fc ≈ 61M.
        assert!(
            s.total_params > 58_000_000 && s.total_params < 63_000_000,
            "{}",
            s.total_params
        );
        assert!(s.fc_param_fraction() > 0.9);
    }

    #[test]
    fn vgg16_parameter_count() {
        let s = NetworkStats::of(&zoo::vgg16()).unwrap();
        // The canonical 138M.
        assert!(
            s.total_params > 132_000_000 && s.total_params < 142_000_000,
            "{}",
            s.total_params
        );
    }

    #[test]
    fn googlenet_is_parameter_lean() {
        let s = NetworkStats::of(&zoo::googlenet()).unwrap();
        // Main tower: ~6-7M parameters, mostly convolutional.
        assert!(
            s.total_params > 5_000_000 && s.total_params < 8_000_000,
            "{}",
            s.total_params
        );
        assert!(s.fc_param_fraction() < 0.25);
    }

    #[test]
    fn peak_activation_identifies_vgg_bottom() {
        let s = NetworkStats::of(&zoo::vgg16()).unwrap();
        // conv1_2: 64x224x224 in + out at 2 B ≈ 12.8 MB.
        assert!(s.peak_activation_bytes > 12_000_000);
        let peak = s
            .layers
            .iter()
            .max_by_key(|l| l.activation_bytes())
            .unwrap();
        assert_eq!(peak.name, "conv1_2");
    }

    #[test]
    fn pool_layers_have_no_params() {
        let s = NetworkStats::of(&zoo::alexnet()).unwrap();
        for l in s.layers.iter().filter(|l| l.kind == "pool") {
            assert_eq!(l.params, 0);
            assert_eq!(l.weight_bytes, 0);
        }
    }

    #[test]
    fn totals_are_layer_sums() {
        let s = NetworkStats::of(&zoo::nin()).unwrap();
        assert_eq!(s.total_macs, s.layers.iter().map(|l| l.macs).sum::<u64>());
        assert_eq!(
            s.total_params,
            s.layers.iter().map(|l| l.params).sum::<u64>()
        );
    }
}
