//! Shard liveness: retry policy, down-markers, and the `stats` probe.

use cbrain_serve::{Client, ClientError, Event, Request};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Deadlines and retry/backoff parameters for talking to one shard.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per request before the shard is declared down.
    pub attempts: u32,
    /// Sleep before the second attempt; doubles per further attempt.
    pub backoff: Duration,
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each read/write on an established connection (the
    /// per-request deadline: one compile batch must answer within it).
    pub io_timeout: Duration,
    /// How long to honour `busy` retry-after hints from a shard before
    /// giving up on it for the current call. A busy shard is healthy —
    /// it is never marked down — but past this budget the router stops
    /// waiting and reroutes to the next preference.
    pub busy_wait: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_millis(25),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            busy_wait: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The sleep before attempt `attempt` (0-based): nothing before the
    /// first, then exponential doubling of [`RetryPolicy::backoff`].
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            Duration::ZERO
        } else {
            self.backoff * 2u32.saturating_pow(attempt - 1)
        }
    }
}

/// One shard's address plus its health flag. The flag is sticky-down
/// for the lifetime of a router: a shard that failed a request or a
/// probe stops receiving traffic until [`ShardState::mark_up`].
#[derive(Debug)]
pub struct ShardState {
    /// The shard's `host:port` address.
    pub addr: String,
    down: AtomicBool,
}

impl ShardState {
    /// A new shard, presumed healthy.
    pub fn new(addr: String) -> Self {
        Self {
            addr,
            down: AtomicBool::new(false),
        }
    }

    /// Whether the shard is currently marked down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Marks the shard down (no further traffic until marked up).
    pub fn mark_down(&self) {
        self.down.store(true, Ordering::SeqCst);
    }

    /// Marks the shard healthy again (e.g. after a successful probe).
    pub fn mark_up(&self) {
        self.down.store(false, Ordering::SeqCst);
    }
}

/// Connects, performs the `hello` version/capability exchange, and
/// pings `stats`. Returns the daemon's cached-entry count on success.
/// Any transport failure, version mismatch, or missing `compile_keys`
/// capability is an error — the caller marks the shard down. A
/// [`ClientError::Busy`] answer is also an error here, but callers must
/// treat it as proof of life, not failure: a shedding shard is up.
///
/// # Errors
///
/// Returns the [`ClientError`] describing the first failure.
pub fn probe(addr: &str, policy: &RetryPolicy) -> Result<u64, ClientError> {
    // Probes are cheap liveness checks: bound every read/write by the
    // connect deadline rather than the (much longer) compile deadline,
    // and do not linger on busy shards — surface the hint immediately.
    let mut client = Client::builder(addr)
        .connect_timeout(policy.connect_timeout)
        .io_timeout(policy.connect_timeout)
        .busy_wait(Duration::ZERO)
        .expect_caps(["compile_keys"])
        .connect()?;
    match client.submit(&Request::Stats, |_| {})? {
        Event::Stats { entries, .. } => Ok(entries),
        other => Err(ClientError::Protocol(format!(
            "expected a `stats` event, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_attempt() {
        let policy = RetryPolicy {
            attempts: 4,
            backoff: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_before(0), Duration::ZERO);
        assert_eq!(policy.backoff_before(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_before(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_before(3), Duration::from_millis(40));
    }

    #[test]
    fn shard_state_flags_toggle() {
        let shard = ShardState::new("127.0.0.1:1".into());
        assert!(!shard.is_down());
        shard.mark_down();
        assert!(shard.is_down());
        shard.mark_up();
        assert!(!shard.is_down());
    }

    #[test]
    fn probe_of_a_dead_address_fails() {
        // Port 1 on loopback: nothing listens there.
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        assert!(probe("127.0.0.1:1", &policy).is_err());
    }
}
