//! Deterministic rendezvous (highest-random-weight) hashing over a
//! shard list.
//!
//! Each `(key, shard)` pair gets a pseudo-random weight from the
//! in-tree [`XorShift64`] generator, seeded by mixing the ring seed, the
//! key's hash, and the shard address's FNV-1a hash. Sorting a key's
//! weights descending yields its *preference order*: the first live
//! shard in that order owns the key, and failover walks down the same
//! list — so losing a shard only remaps the keys that shard owned
//! (HRW's minimal-disruption property), and every client that shares
//! the shard list and seed computes identical routes with no
//! coordination.

use cbrain::persist::fnv1a64;
use cbrain_model::rng::XorShift64;

/// A consistent-hash ring over `cbrand` shard addresses.
///
/// # Examples
///
/// ```
/// use cbrain_fleet::Ring;
///
/// let ring = Ring::new(vec!["a:1".into(), "b:2".into(), "c:3".into()], 0);
/// let prefs = ring.preference(0xdead_beef);
/// assert_eq!(prefs.len(), 3);
/// assert_eq!(ring.owner(0xdead_beef), prefs[0]);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    shards: Vec<String>,
    /// Per-shard address hashes, precomputed once.
    shard_hashes: Vec<u64>,
    seed: u64,
}

impl Ring {
    /// Builds a ring over `shards` (addresses, order preserved) with a
    /// routing seed. Peers must agree on both to route identically.
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list — a fleet needs at least one node.
    pub fn new(shards: Vec<String>, seed: u64) -> Self {
        assert!(!shards.is_empty(), "a ring needs at least one shard");
        let shard_hashes = shards.iter().map(|s| fnv1a64(s.as_bytes())).collect();
        Self {
            shards,
            shard_hashes,
            seed,
        }
    }

    /// The shard addresses, in construction order (the indices returned
    /// by [`Ring::preference`] and [`Ring::owner`] point into this).
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The routing seed the ring was built with. Peers (and journal
    /// provenance records) identify a fleet layout by shard list + seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring is empty (never true: construction requires a
    /// non-empty list).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The rendezvous weight of `(key_hash, shard)`.
    fn weight(&self, key_hash: u64, shard: usize) -> u64 {
        XorShift64::seed_from_u64(self.seed ^ key_hash ^ self.shard_hashes[shard]).next_u64()
    }

    /// Shard indices in descending-weight order for a key: element 0 is
    /// the owner, the rest is the failover order. Ties (vanishingly
    /// rare) break toward the lower index, so the order is total.
    pub fn preference(&self, key_hash: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by(|&a, &b| {
            self.weight(key_hash, b)
                .cmp(&self.weight(key_hash, a))
                .then(a.cmp(&b))
        });
        order
    }

    /// The index of the shard that owns a key when every shard is live.
    pub fn owner(&self, key_hash: u64) -> usize {
        (0..self.shards.len())
            .max_by(|&a, &b| {
                self.weight(key_hash, a)
                    .cmp(&self.weight(key_hash, b))
                    .then(b.cmp(&a))
            })
            .expect("ring is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3(seed: u64) -> Ring {
        Ring::new(
            vec![
                "127.0.0.1:4001".into(),
                "127.0.0.1:4002".into(),
                "127.0.0.1:4003".into(),
            ],
            seed,
        )
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = ring3(7);
        let b = ring3(7);
        for key in 0..500u64 {
            let hash = fnv1a64(&key.to_le_bytes());
            assert_eq!(a.preference(hash), b.preference(hash));
            assert_eq!(a.owner(hash), b.owner(hash));
        }
    }

    #[test]
    fn owner_is_preference_head_and_orders_are_permutations() {
        let ring = ring3(42);
        for key in 0..200u64 {
            let hash = fnv1a64(&key.to_le_bytes());
            let prefs = ring.preference(hash);
            assert_eq!(prefs.len(), 3);
            let mut sorted = prefs.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(ring.owner(hash), prefs[0]);
        }
    }

    #[test]
    fn keys_spread_over_every_shard() {
        let ring = ring3(0);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.owner(fnv1a64(&key.to_le_bytes()))] += 1;
        }
        for (i, count) in counts.iter().enumerate() {
            // Perfectly uniform would be 1000 each; demand a loose band.
            assert!((600..=1400).contains(count), "shard {i}: {count}");
        }
    }

    #[test]
    fn seed_changes_the_layout() {
        let a = ring3(1);
        let b = ring3(2);
        let moved = (0..500u64)
            .filter(|key| {
                let hash = fnv1a64(&key.to_le_bytes());
                a.owner(hash) != b.owner(hash)
            })
            .count();
        assert!(moved > 100, "only {moved} keys moved between seeds");
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        // The HRW property the failover path relies on: for keys NOT
        // owned by the dead shard, the surviving preference order is
        // unchanged, so routing around a death never moves other keys.
        let full = ring3(9);
        let survivors = Ring::new(vec!["127.0.0.1:4001".into(), "127.0.0.1:4003".into()], 9);
        for key in 0..500u64 {
            let hash = fnv1a64(&key.to_le_bytes());
            let full_first_alive = *full
                .preference(hash)
                .iter()
                .find(|&&i| i != 1)
                .expect("two survivors remain");
            let survivor_owner = survivors.owner(hash);
            let survivor_addr = &survivors.shards()[survivor_owner];
            assert_eq!(&full.shards()[full_first_alive], survivor_addr);
        }
    }
}
