//! # cbrain-fleet
//!
//! Sharded serving for the C-Brain reproduction: a consistent-hash
//! router that spreads the compiled-layer key space across N `cbrand`
//! daemons, with health checks and failover.
//!
//! The layer cache key ([`cbrain::LayerKey`]) is the sharding unit —
//! each layer compiles independently, so the fleet is an embarrassingly
//! shardable pure-function service. The client stays *local*: a
//! [`cbrain::Runner`] performs its deterministic accounting and merge
//! passes in-process and only the compile work-list scatters, which is
//! what makes a fleet report byte-identical to single-process output
//! even while shards die mid-run.
//!
//! * [`ring`] — deterministic rendezvous hashing (seeded by the in-tree
//!   xorshift PRNG) mapping key hashes to shard preference orders;
//! * [`health`] — retry/backoff policy, sticky down-markers, and the
//!   `hello` + `stats` probe;
//! * [`gather`] — one shard's scatter/gather exchange: `compile_keys`
//!   out, `entry` bytes back, verified against the requested keys;
//! * [`router`] — the [`cbrain::CompileBackend`] tying it together:
//!   group by first live shard, scatter concurrently, reroute or
//!   recompute locally on failure.
//!
//! # Quick start
//!
//! ```no_run
//! use cbrain_fleet::{run_network_on_fleet, FleetRouter};
//! use cbrain::{Policy, RunOptions};
//! use cbrain_model::zoo;
//! use cbrain_sim::AcceleratorConfig;
//! use std::sync::Arc;
//!
//! let router = Arc::new(FleetRouter::new(
//!     vec!["10.0.0.1:7171".into(), "10.0.0.2:7171".into()],
//!     0,
//! ));
//! router.probe_shards();
//! let report = run_network_on_fleet(
//!     &router,
//!     &zoo::alexnet(),
//!     Policy::Adaptive { improved_inter: true },
//!     AcceleratorConfig::paper_16_16(),
//!     RunOptions::default(),
//! )?;
//! assert!(report.cycles() > 0);
//! # Ok::<(), cbrain::RunError>(())
//! ```

#![warn(missing_docs)]

pub mod gather;
pub mod health;
pub mod ring;
pub mod router;

pub use gather::{compile_on_shard, FleetError};
pub use health::{probe, RetryPolicy, ShardState};
pub use ring::Ring;
pub use router::FleetRouter;

use cbrain::{NetworkReport, Policy, RunError, RunOptions, Runner};
use cbrain_model::Network;
use cbrain_sim::AcceleratorConfig;
use std::sync::Arc;

/// Runs a network with compile misses scattered over the fleet: a local
/// [`Runner`] (jobs pinned to 1 — parallelism lives in the scatter) with
/// the router as its [`cbrain::CompileBackend`]. The report is
/// byte-identical to `Runner::with_options(cfg, opts).run_network(..)`.
///
/// # Errors
///
/// Returns a [`RunError`] on compile failure — including a shard
/// *answering* with an error; unreachable shards are not fatal as long
/// as the work can reroute or recompute locally.
pub fn run_network_on_fleet(
    router: &Arc<FleetRouter>,
    net: &Network,
    policy: Policy,
    cfg: AcceleratorConfig,
    opts: RunOptions,
) -> Result<NetworkReport, RunError> {
    let runner = Runner::with_options(cfg, RunOptions { jobs: 1, ..opts })
        .with_compile_backend(Arc::clone(router) as Arc<dyn cbrain::CompileBackend>);
    runner.run_network(net, policy)
}
