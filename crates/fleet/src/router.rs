//! The fleet router: a [`CompileBackend`] that scatters compile
//! work-lists over the ring and degrades gracefully when shards die.

use crate::gather::compile_on_shard;
use crate::health::{probe, RetryPolicy, ShardState};
use crate::ring::Ring;
use cbrain::cache::{CompiledLayerCache, LayerKey};
use cbrain::persist::key_hash;
use cbrain::telemetry::{Counter, Histogram, Registry, Span, DURATION_BUCKETS};
use cbrain::{compile_cache_entry, try_parallel_map, CompileBackend, RunError};
use cbrain_model::Layer;
use cbrain_serve::ClientError;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Per-shard router counters, registered in [`Registry::global`] under
/// `router_*_total{shard="ADDR"}` names so any process embedding a
/// router (coordinator tools, tests) can scrape or sample them.
/// Counters record unconditionally — they are failure accounting, not
/// timing, so the `CBRAIN_TELEMETRY` kill switch does not blank them.
#[derive(Debug)]
pub struct ShardMetrics {
    /// Extra transport attempts (`router_retries_total`): one per
    /// retry after the first attempt of a shard request.
    pub retries: Arc<Counter>,
    /// Batches this shard shed with `busy` after the busy-wait budget
    /// (`router_busy_backoffs_total`).
    pub busy_backoffs: Arc<Counter>,
    /// Times this shard was marked down by a failed batch
    /// (`router_downmarks_total`).
    pub downmarks: Arc<Counter>,
    /// Keys destined for this shard that were re-pended to another
    /// shard or to the local pool (`router_reroutes_total`).
    pub reroutes: Arc<Counter>,
}

impl ShardMetrics {
    fn new(addr: &str) -> Self {
        let registry = Registry::global();
        Self {
            retries: registry.counter(
                &format!("router_retries_total{{shard=\"{addr}\"}}"),
                "extra transport attempts per shard",
            ),
            busy_backoffs: registry.counter(
                &format!("router_busy_backoffs_total{{shard=\"{addr}\"}}"),
                "batches shed with busy after the busy-wait budget, per shard",
            ),
            downmarks: registry.counter(
                &format!("router_downmarks_total{{shard=\"{addr}\"}}"),
                "times a failed batch marked the shard down",
            ),
            reroutes: registry.counter(
                &format!("router_reroutes_total{{shard=\"{addr}\"}}"),
                "keys re-pended away from their preferred shard",
            ),
        }
    }
}

/// Routes compile work-lists across a fleet of `cbrand` shards.
///
/// Install it on a *local* [`cbrain::Runner`] via
/// [`cbrain::Runner::with_compile_backend`]: the runner's serial
/// accounting and merge passes are untouched, so the resulting
/// [`cbrain::NetworkReport`] is byte-identical to a single-process run —
/// the fleet only changes *where* cache misses compile.
///
/// Failure handling, per batch: a shard that cannot be reached (after
/// [`RetryPolicy::attempts`] tries with exponential backoff) is marked
/// down and its keys reroute to the next shard in their rendezvous
/// preference order; keys with no live shard left compile locally. A
/// shard that *answers* with a compile error fails the run — the
/// compile is a pure function, so every peer would fail identically.
///
/// A shard that answers `busy` is healthy, just shedding: its keys are
/// retried after the daemon's hint for up to [`RetryPolicy::busy_wait`],
/// then rerouted to the next preference for the rest of *this* batch
/// only — the shard is never marked down and stays first in line for
/// the next batch.
#[derive(Debug)]
pub struct FleetRouter {
    ring: Ring,
    shards: Vec<ShardState>,
    retry: RetryPolicy,
    local_jobs: usize,
    /// Per-shard counters, parallel to `shards` (ring order).
    metrics: Vec<ShardMetrics>,
    /// Wall-clock seconds per scatter round (`router_scatter_seconds`).
    scatter_seconds: Arc<Histogram>,
}

impl FleetRouter {
    /// A router over `addrs` with the default [`RetryPolicy`] and
    /// single-threaded local fallback.
    pub fn new(addrs: Vec<String>, seed: u64) -> Self {
        Self::with_policy(addrs, seed, RetryPolicy::default(), 1)
    }

    /// A router with explicit deadlines/retry parameters and
    /// `local_jobs` pool workers for locally-recomputed keys.
    ///
    /// # Panics
    ///
    /// Panics on an empty address list.
    pub fn with_policy(
        addrs: Vec<String>,
        seed: u64,
        retry: RetryPolicy,
        local_jobs: usize,
    ) -> Self {
        let ring = Ring::new(addrs.clone(), seed);
        let metrics = addrs.iter().map(|a| ShardMetrics::new(a)).collect();
        let shards = addrs.into_iter().map(ShardState::new).collect();
        let scatter_seconds = Registry::global().histogram(
            "router_scatter_seconds",
            "wall-clock seconds per scatter round over the fleet",
            &DURATION_BUCKETS,
        );
        Self {
            ring,
            shards,
            retry,
            local_jobs,
            metrics,
            scatter_seconds,
        }
    }

    /// The router's ring (for layout inspection).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Per-shard health states, in ring order.
    pub fn shard_states(&self) -> &[ShardState] {
        &self.shards
    }

    /// Per-shard counters, in ring order (parallel to
    /// [`Self::shard_states`]). The same counters are registered in
    /// [`Registry::global`], so a scrape sees them too.
    pub fn shard_metrics(&self) -> &[ShardMetrics] {
        &self.metrics
    }

    /// A stable provenance string for run journals: the shard ring
    /// (addresses in ring order) and the routing seed. Two runs with the
    /// same provenance scatter every key to the same owner, so a
    /// journaled cell's record names the fleet layout that produced it.
    /// Deliberately excludes live health — a failover changes *where* a
    /// key compiled, never *what* it compiled to.
    pub fn provenance(&self) -> String {
        format!(
            "shards={};seed={}",
            self.ring.shards().join(","),
            self.ring.seed()
        )
    }

    /// Probes every shard (`hello` + `stats` ping), updating the health
    /// flags, and returns each shard's outcome: its cached-entry count,
    /// or the failure that marked it down. A `busy` answer is proof of
    /// life — the shard is marked *up* even though the probe's stats
    /// question went unanswered.
    pub fn probe_shards(&self) -> Vec<(String, Result<u64, ClientError>)> {
        self.shards
            .iter()
            .map(|shard| {
                let outcome = probe(&shard.addr, &self.retry);
                let alive = outcome.is_ok() || matches!(outcome, Err(ClientError::Busy { .. }));
                if alive {
                    shard.mark_up();
                } else {
                    shard.mark_down();
                }
                (shard.addr.clone(), outcome)
            })
            .collect()
    }

    /// The first shard in a key's rendezvous preference order that is
    /// neither down nor (for this batch) busy.
    fn first_live_shard(&self, busy: &HashSet<usize>, key: &LayerKey) -> Option<usize> {
        self.ring
            .preference(key_hash(key))
            .into_iter()
            .find(|&i| !self.shards[i].is_down() && !busy.contains(&i))
    }
}

impl CompileBackend for FleetRouter {
    fn compile_batch(
        &self,
        cache: &CompiledLayerCache,
        worklist: Vec<(LayerKey, Layer)>,
    ) -> Result<(), RunError> {
        // Drop already-cached and duplicate keys (first occurrence wins;
        // entries are pure functions of the key, so any copy is right).
        let mut seen: HashSet<LayerKey> = HashSet::new();
        let mut pending: Vec<(LayerKey, Layer)> = worklist
            .into_iter()
            .filter(|(key, _)| !cache.contains(key) && seen.insert(*key))
            .collect();

        // Shards that shed this batch with `busy` (already waited on up
        // to the policy's busy budget). Skipped for the rest of the
        // batch, but never marked down — the next batch tries them
        // first again.
        let mut busy: HashSet<usize> = HashSet::new();

        // Each round either finishes or grows the set of excluded
        // shards (down ∪ busy) by at least one, so `shards + 1` rounds
        // always suffice (the last one finds no eligible shard and
        // compiles everything locally).
        for _round in 0..=self.shards.len() {
            if pending.is_empty() {
                return Ok(());
            }
            let mut local: Vec<(LayerKey, Layer)> = Vec::new();
            let mut groups: BTreeMap<usize, Vec<(LayerKey, Layer)>> = BTreeMap::new();
            for (key, layer) in pending.drain(..) {
                match self.first_live_shard(&busy, &key) {
                    Some(i) => groups.entry(i).or_default().push((key, layer)),
                    None => local.push((key, layer)),
                }
            }

            // Scatter: one thread per shard group, all in flight at once.
            let scatter_span = (!groups.is_empty()).then(|| Span::start(&self.scatter_seconds));
            let results: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(&i, group)| {
                        let addr = &self.shards[i].addr;
                        let retry = &self.retry;
                        let batch: Vec<(LayerKey, String)> = group
                            .iter()
                            .map(|(key, layer)| (*key, layer.name.clone()))
                            .collect();
                        scope.spawn(move || compile_on_shard(addr, retry, &batch))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread"))
                    .collect()
            });
            drop(scatter_span);

            // Gather: insert what came back, re-pend what did not.
            for ((i, group), result) in groups.into_iter().zip(results) {
                match result {
                    Ok(entries) => {
                        for (key, value) in entries {
                            cache.insert(key, value);
                        }
                    }
                    Err(e) if e.is_busy() => {
                        // Healthy but shedding: reroute without the
                        // down-mark, and stop asking it this batch.
                        self.metrics[i].busy_backoffs.inc();
                        self.metrics[i].reroutes.add(group.len() as u64);
                        busy.insert(i);
                        pending.extend(group);
                    }
                    Err(e) if e.is_retryable() => {
                        self.metrics[i].downmarks.inc();
                        self.metrics[i].reroutes.add(group.len() as u64);
                        self.shards[i].mark_down();
                        pending.extend(group);
                    }
                    Err(e) => return Err(RunError::Backend(e.to_string())),
                }
            }

            // Graceful degradation: orphaned keys compile right here.
            if !local.is_empty() {
                let compiled = try_parallel_map(self.local_jobs, local, |(key, layer)| {
                    compile_cache_entry(&layer, &key).map(|entry| (key, entry))
                })?;
                for (key, entry) in compiled {
                    cache.insert(key, entry);
                }
            }
        }
        if pending.is_empty() {
            Ok(())
        } else {
            // Unreachable by the round-count argument above; refuse to
            // return with keys missing rather than let a caller panic on
            // an absent cache entry.
            Err(RunError::Backend(
                "fleet router could not place every key".into(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain::RunOptions;
    use cbrain_model::zoo;
    use cbrain_sim::AcceleratorConfig;
    use std::time::Duration;

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            attempts: 2,
            backoff: Duration::from_millis(1),
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            busy_wait: Duration::from_millis(200),
        }
    }

    #[test]
    fn all_shards_dead_degrades_to_local_compilation() {
        // Ports 1 and 2 on loopback refuse connections, so every key
        // falls back to the local pool — the run must still succeed.
        let router = FleetRouter::with_policy(
            vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            0,
            fast_retry(),
            2,
        );
        let cache = CompiledLayerCache::shared();
        let net = zoo::alexnet();
        let cfg = AcceleratorConfig::paper_16_16();
        let opts = RunOptions::default();
        let worklist: Vec<(LayerKey, Layer)> = net
            .layers()
            .iter()
            .filter(|l| l.as_conv().is_some())
            .map(|l| {
                (
                    LayerKey::new(l, cbrain::Scheme::Inter, &cfg, &opts),
                    l.clone(),
                )
            })
            .collect();
        assert!(!worklist.is_empty());
        let keys: Vec<LayerKey> = worklist.iter().map(|(k, _)| *k).collect();
        router.compile_batch(&cache, worklist).unwrap();
        for key in &keys {
            assert!(cache.contains(key));
        }
        assert!(router.shard_states().iter().all(ShardState::is_down));
    }

    #[test]
    fn probe_marks_unreachable_shards_down() {
        let router = FleetRouter::with_policy(vec!["127.0.0.1:1".into()], 0, fast_retry(), 1);
        let outcomes = router.probe_shards();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].1.is_err());
        assert!(router.shard_states()[0].is_down());
    }
}
