//! The scatter/gather unit: ship one compile batch to one shard with
//! retry + backoff, and rebuild cache entries from the streamed bytes.

use crate::health::RetryPolicy;
use cbrain::cache::{CachedLayer, LayerKey};
use cbrain::persist;
use cbrain_serve::wire::CompileItem;
use cbrain_serve::{Client, ClientError, Event, Request};
use std::fmt;

/// Error from fleet traffic.
#[derive(Debug)]
pub enum FleetError {
    /// The shard could not be reached or the exchange broke mid-stream.
    /// Retryable: the router marks the shard down and reroutes.
    Transport {
        /// The shard address involved.
        addr: String,
        /// The underlying client failure.
        cause: ClientError,
    },
    /// The shard answered but reported a compile failure. Deterministic
    /// (every shard compiles the same pure function), so not retried.
    Remote {
        /// The shard address involved.
        addr: String,
        /// The daemon's error message.
        message: String,
    },
    /// The shard answered with bytes that do not decode to the
    /// requested keys — a corrupt or confused peer. Not retried.
    BadEntry {
        /// The shard address involved.
        addr: String,
        /// What was wrong with the payload.
        message: String,
    },
    /// The shard is shedding load and asked us to come back later. The
    /// shard is healthy — the router must NOT mark it down; it reroutes
    /// the batch for now and keeps the shard in rotation.
    Busy {
        /// The shard address involved.
        addr: String,
        /// The shard's suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Transport { addr, cause } => {
                write!(f, "shard {addr} unreachable: {cause}")
            }
            FleetError::Remote { addr, message } => {
                write!(f, "shard {addr} failed the batch: {message}")
            }
            FleetError::BadEntry { addr, message } => {
                write!(f, "shard {addr} sent a bad entry: {message}")
            }
            FleetError::Busy {
                addr,
                retry_after_ms,
            } => {
                write!(f, "shard {addr} is busy (retry in {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl FleetError {
    /// Whether the router should mark the shard down and reroute the
    /// work (transport failures), as opposed to failing the run
    /// (deterministic remote errors, corrupt payloads). `busy` is
    /// neither: the work reroutes but the shard stays healthy — see
    /// [`FleetError::is_busy`].
    pub fn is_retryable(&self) -> bool {
        matches!(self, FleetError::Transport { .. })
    }

    /// Whether this is a `busy` shed answer: the shard is alive but
    /// declining work for now. The router reroutes without marking the
    /// shard down.
    pub fn is_busy(&self) -> bool {
        matches!(self, FleetError::Busy { .. })
    }
}

/// Ships one compile batch to `addr` and gathers the resulting cache
/// entries, in request order. Each attempt is a fresh connection with a
/// `hello` exchange; transport failures retry up to
/// [`RetryPolicy::attempts`] times with exponential backoff, while
/// remote compile errors and corrupt payloads fail immediately.
///
/// A shedding shard is waited on: `busy` answers are retried after the
/// daemon's hint for up to [`RetryPolicy::busy_wait`], after which
/// [`FleetError::Busy`] surfaces so the router can reroute — without
/// marking the shard down.
///
/// # Errors
///
/// Returns the last [`FleetError`] once retries are exhausted, or the
/// first non-retryable one.
pub fn compile_on_shard(
    addr: &str,
    policy: &RetryPolicy,
    batch: &[(LayerKey, String)],
) -> Result<Vec<(LayerKey, CachedLayer)>, FleetError> {
    let mut last = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            // Retries are rare (they ride on a backoff sleep), so the
            // registry lookup here is off every hot path.
            cbrain::telemetry::Registry::global()
                .counter(
                    &format!("router_retries_total{{shard=\"{addr}\"}}"),
                    "extra transport attempts per shard",
                )
                .inc();
        }
        let backoff = policy.backoff_before(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        match compile_once(addr, policy, batch) {
            Ok(entries) => return Ok(entries),
            Err(e) if e.is_retryable() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// One attempt of [`compile_on_shard`].
fn compile_once(
    addr: &str,
    policy: &RetryPolicy,
    batch: &[(LayerKey, String)],
) -> Result<Vec<(LayerKey, CachedLayer)>, FleetError> {
    let transport = |cause: ClientError| FleetError::Transport {
        addr: addr.to_owned(),
        cause,
    };
    let busy_or_transport = |cause: ClientError| match cause {
        ClientError::Busy { retry_after_ms, .. } => FleetError::Busy {
            addr: addr.to_owned(),
            retry_after_ms,
        },
        other => transport(other),
    };
    // One transport attempt per call: [`compile_on_shard`] owns the
    // retry loop. Busy answers are absorbed up to the policy's budget
    // by the builder itself; past it they surface as `FleetError::Busy`.
    let mut client = Client::builder(addr)
        .connect_timeout(policy.connect_timeout)
        .io_timeout(policy.io_timeout)
        .busy_wait(policy.busy_wait)
        .connect()
        .map_err(busy_or_transport)?;

    let items = batch
        .iter()
        .map(|(key, name)| CompileItem {
            key: persist::key_bytes(key),
            name: name.clone(),
        })
        .collect();
    let mut raw: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
    let terminal = client
        .submit(&Request::CompileKeys { items }, |event| {
            if let Event::Entry { data } = event {
                raw.push(data.clone());
            }
        })
        .map_err(|e| match e {
            // The daemon answered; its compile failure is deterministic.
            ClientError::Remote(message) => FleetError::Remote {
                addr: addr.to_owned(),
                message,
            },
            other => busy_or_transport(other),
        })?;
    if terminal != Event::Ok {
        return Err(transport(ClientError::Protocol(format!(
            "expected `ok` after entries, got {terminal:?}"
        ))));
    }

    // Entries stream back in request order; verify byte-level identity
    // of each key before trusting the payload.
    if raw.len() != batch.len() {
        return Err(FleetError::BadEntry {
            addr: addr.to_owned(),
            message: format!("{} entries for {} keys", raw.len(), batch.len()),
        });
    }
    let mut entries = Vec::with_capacity(batch.len());
    for (bytes, (want, name)) in raw.iter().zip(batch) {
        let (key, value) =
            persist::decode_entry_bytes(bytes).map_err(|e| FleetError::BadEntry {
                addr: addr.to_owned(),
                message: format!("entry for `{name}` does not decode: {e}"),
            })?;
        if key != *want {
            return Err(FleetError::BadEntry {
                addr: addr.to_owned(),
                message: format!("entry for `{name}` answers a different key"),
            });
        }
        entries.push((key, value));
    }
    Ok(entries)
}
