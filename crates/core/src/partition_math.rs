//! The paper's two equations, as standalone public API.

/// Equation 2: kernel partitioning. Returns `(g, ks)` where the `k x k`
/// kernel splits into `g x g` sub-kernels of side `ks`:
/// `g = ceil(k / s)`, `ks = s`.
///
/// When `stride >= kernel` the windows already never overlap and the
/// split degenerates to a single piece, `(1, kernel)` — a plain sliding
/// window. This keeps the function total for every geometry Algorithm 2
/// can hand it (`k = 1` pointwise layers included).
///
/// # Panics
///
/// Panics if `stride` is zero.
///
/// # Examples
///
/// ```
/// use cbrain::partition_math::partition;
///
/// // AlexNet conv1 (Fig. 5): 11x11 kernel at stride 4 -> 3x3 pieces of 4x4.
/// assert_eq!(partition(11, 4), (3, 4));
/// // VGG: 3x3 at stride 1 -> 3x3 pieces of single weights.
/// assert_eq!(partition(3, 1), (3, 1));
/// // Pointwise (k=1): nothing to split.
/// assert_eq!(partition(1, 1), (1, 1));
/// // Stride past the kernel: one piece, no zero-padding slack.
/// assert_eq!(partition(3, 5), (1, 3));
/// ```
pub fn partition(kernel: usize, stride: usize) -> (usize, usize) {
    assert!(stride > 0, "stride must be non-zero");
    if stride >= kernel {
        return (1, kernel);
    }
    (kernel.div_ceil(stride), stride)
}

/// Equation 1: data duplication factor `T` of unrolling a map of `x * y`
/// pixels with a `k x k` kernel at stride `s`:
///
/// `T = ((x - k)/s + 1) * ((y - k)/s + 1) * k^2 / (x * y)`
///
/// Returns 0.0 when the kernel does not fit.
///
/// # Examples
///
/// ```
/// use cbrain::partition_math::unroll_duplication;
///
/// // The paper's Sec. 4.1.2 example: 28x28 map, k=5, s=1 unrolls to
/// // 24x24x25 — about 18.4x the raw data.
/// let t = unroll_duplication(28, 28, 5, 1);
/// assert!((t - 18.367).abs() < 0.01);
/// ```
pub fn unroll_duplication(x: usize, y: usize, k: usize, s: usize) -> f64 {
    if k > x || k > y || s == 0 {
        return 0.0;
    }
    let wx = (x - k) / s + 1;
    let wy = (y - k) / s + 1;
    (wx * wy * k * k) as f64 / (x * y) as f64
}

/// Raw and unrolled sizes in bits for a `maps` x `y` x `x` input at 16-bit
/// elements — the two bar series of the paper's Fig. 3.
///
/// # Examples
///
/// ```
/// use cbrain::partition_math::unrolled_bits;
///
/// let (raw, unrolled) = unrolled_bits(3, 227, 227, 11, 4);
/// assert!(unrolled as f64 / raw as f64 > 6.0);
/// ```
pub fn unrolled_bits(maps: usize, y: usize, x: usize, k: usize, s: usize) -> (u64, u64) {
    let raw = (maps * y * x * 16) as u64;
    let wx = if k <= x { (x - k) / s + 1 } else { 0 };
    let wy = if k <= y { (y - k) / s + 1 } else { 0 };
    let unrolled = (maps * wy * wx * k * k * 16) as u64;
    (raw, unrolled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_2_examples() {
        assert_eq!(partition(11, 4), (3, 4));
        assert_eq!(partition(7, 2), (4, 2));
        assert_eq!(partition(5, 1), (5, 1));
        assert_eq!(partition(3, 3), (1, 3)); // k == s degenerates
        assert_eq!(partition(4, 2), (2, 2)); // exact divide, no padding
    }

    #[test]
    fn degenerate_geometries_are_total() {
        // k = 1 pointwise: one piece regardless of stride.
        assert_eq!(partition(1, 1), (1, 1));
        assert_eq!(partition(1, 2), (1, 1));
        // s > k: already non-overlapping, one full-size piece.
        assert_eq!(partition(3, 5), (1, 3));
        assert_eq!(partition(2, 7), (1, 2));
    }

    #[test]
    fn partition_covers_kernel() {
        // g * ks >= k always (the sub-grid covers the original kernel).
        for k in 1..=13 {
            for s in 1..=k {
                let (g, ks) = partition(k, s);
                assert!(g * ks >= k, "k={k} s={s}");
                // ... and never by more than one sub-kernel of slack.
                assert!(g * ks < k + ks, "k={k} s={s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn partition_rejects_zero_stride() {
        let _ = partition(3, 0);
    }

    #[test]
    fn equation_1_is_one_when_k_equals_s_and_divides() {
        // Non-overlapping windows that tile exactly: no duplication.
        let t = unroll_duplication(28, 28, 4, 4);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equation_1_grows_with_overlap() {
        assert!(unroll_duplication(28, 28, 5, 1) > unroll_duplication(28, 28, 5, 2));
        assert!(unroll_duplication(28, 28, 5, 2) > unroll_duplication(28, 28, 5, 5));
    }

    #[test]
    fn equation_1_zero_when_kernel_too_big() {
        assert_eq!(unroll_duplication(4, 4, 5, 1), 0.0);
    }

    #[test]
    fn figure_3_alexnet_range() {
        // Paper: the first conv layers of AlexNet/GoogLeNet unroll to
        // 9x-18.9x the raw input.
        let nets = [
            (227usize, 11usize, 4usize), // alexnet c1
            (224, 7, 2),                 // googlenet c1
        ];
        for (xy, k, s) in nets {
            let t = unroll_duplication(xy, xy, k, s);
            assert!(t > 6.0 && t < 19.0, "xy={xy} k={k} s={s} t={t}");
        }
        // The 5x5 stride-1 layers hit the top of the range.
        let t = unroll_duplication(27, 27, 5, 1);
        assert!(t > 18.0 && t < 19.0, "t={t}");
    }

    #[test]
    fn unrolled_bits_consistent_with_duplication() {
        let (raw, unrolled) = unrolled_bits(3, 227, 227, 11, 4);
        let t = unroll_duplication(227, 227, 11, 4);
        assert!(((unrolled as f64 / raw as f64) - t).abs() < 1e-9);
    }
}
