//! Network schedule planning: the per-layer decisions (scheme, layout,
//! transform) as an inspectable data structure, independent of execution.
//!
//! [`crate::Runner`] executes networks directly; this module exposes what
//! the paper's host compiler would hand to the accelerator — the ordered
//! list of layer mappings with the Algorithm 2 lines 4-5 layout plan — so
//! tools can inspect, print or serialize a schedule without simulating it.

use crate::adaptive::{scheme_for, Policy};
use crate::error::RunError;
use cbrain_compiler::{DataLayout, Scheme};
use cbrain_model::{Layer, LayerKind, Network};
use cbrain_sim::AcceleratorConfig;

/// One scheduled layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledLayer {
    /// Layer name.
    pub name: String,
    /// Scheme the policy assigns (None for pooling layers, which have no
    /// scheme choice).
    pub scheme: Option<Scheme>,
    /// Layout the layer's input must be stored in.
    pub input_layout: DataLayout,
    /// Layout the layer's output will be stored in. With planning enabled
    /// this is the *next* consumer's preference (Algorithm 2 lines 4-5).
    pub output_layout: DataLayout,
    /// Whether an explicit layout transform must run before this layer
    /// (never true when planning is enabled).
    pub needs_transform: bool,
}

/// A planned schedule for a network under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Network name.
    pub network: String,
    /// Policy that produced the schedule.
    pub policy: Policy,
    /// Per-layer decisions, in execution order (conv and pool layers; FC
    /// layers always map inter-kernel and are included for completeness).
    pub layers: Vec<ScheduledLayer>,
}

impl Schedule {
    /// Number of scheme switches between consecutive convolution layers —
    /// the "adaptivity" the paper exploits.
    pub fn scheme_switches(&self) -> usize {
        let schemes: Vec<Scheme> = self.layers.iter().filter_map(|l| l.scheme).collect();
        schemes.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Number of explicit layout transforms the schedule requires.
    pub fn transform_count(&self) -> usize {
        self.layers.iter().filter(|l| l.needs_transform).count()
    }

    /// The distinct schemes the schedule uses.
    pub fn schemes_used(&self) -> Vec<Scheme> {
        let mut v: Vec<Scheme> = self.layers.iter().filter_map(|l| l.scheme).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn static_scheme(layer: &Layer, policy: Policy, cfg: &AcceleratorConfig) -> Option<Scheme> {
    match &layer.kind {
        LayerKind::Conv(p) => Some(scheme_for(policy, p, cfg)),
        LayerKind::Pool(_) | LayerKind::Eltwise(_) => None,
        LayerKind::FullyConnected(_) => Some(Scheme::Inter),
    }
}

/// Plans a network's schedule without simulating it.
///
/// With `layout_planning`, each layer's output layout is set to the next
/// scheme-bearing layer's input preference, so no transforms are needed.
/// Without it, every layer stores its natural order and a transform is
/// flagged wherever producer and consumer disagree.
///
/// [`Policy::Oracle`] cannot be planned statically (it requires
/// simulation); it is resolved as adpa-2 here, matching
/// [`crate::adaptive::scheme_for`].
///
/// # Errors
///
/// Returns [`RunError::EmptyWorkload`] for a network with no layers.
///
/// # Examples
///
/// ```
/// use cbrain::schedule::plan_network;
/// use cbrain::Policy;
/// use cbrain_model::zoo;
/// use cbrain_sim::AcceleratorConfig;
///
/// let plan = plan_network(
///     &zoo::alexnet(),
///     Policy::Adaptive { improved_inter: true },
///     &AcceleratorConfig::paper_16_16(),
///     true,
/// )?;
/// // conv1 partitions, the deep layers run improved inter-kernel.
/// assert!(plan.scheme_switches() >= 1);
/// assert_eq!(plan.transform_count(), 0);
/// # Ok::<(), cbrain::RunError>(())
/// ```
pub fn plan_network(
    net: &Network,
    policy: Policy,
    cfg: &AcceleratorConfig,
    layout_planning: bool,
) -> Result<Schedule, RunError> {
    if net.layers().is_empty() {
        return Err(RunError::EmptyWorkload {
            network: net.name().to_owned(),
        });
    }

    let schemes: Vec<Option<Scheme>> = net
        .layers()
        .iter()
        .map(|l| static_scheme(l, policy, cfg))
        .collect();

    let mut layers = Vec::with_capacity(net.layers().len());
    let mut prev_output: Option<DataLayout> = None;
    for (i, layer) in net.layers().iter().enumerate() {
        let scheme = schemes[i];
        let input_layout = scheme
            .map(DataLayout::preferred_by)
            .or(prev_output)
            .unwrap_or_default();
        let output_layout = if layout_planning {
            // Algorithm 2 lines 4-5: look ahead to the next layer that has
            // a scheme and store in its preferred order.
            schemes[i + 1..]
                .iter()
                .flatten()
                .next()
                .map(|s| DataLayout::preferred_by(*s))
                .unwrap_or(input_layout)
        } else {
            input_layout
        };
        let needs_transform = !layout_planning
            && matches!(layer.kind, LayerKind::Conv(_))
            && prev_output.is_some_and(|p| p != input_layout);
        layers.push(ScheduledLayer {
            name: layer.name.clone(),
            scheme,
            input_layout,
            output_layout,
            needs_transform,
        });
        prev_output = Some(if layout_planning {
            output_layout
        } else {
            input_layout
        });
    }

    Ok(Schedule {
        network: net.name().to_owned(),
        policy,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::zoo;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper_16_16()
    }

    fn adpa2() -> Policy {
        Policy::Adaptive {
            improved_inter: true,
        }
    }

    #[test]
    fn alexnet_schedule_partitions_conv1_only() {
        let plan = plan_network(&zoo::alexnet(), adpa2(), &cfg(), true).unwrap();
        let conv_schemes: Vec<_> = plan
            .layers
            .iter()
            .filter_map(|l| l.scheme.as_ref())
            .collect();
        assert_eq!(*conv_schemes[0], Scheme::Partition);
        assert!(conv_schemes[1..4]
            .iter()
            .all(|s| **s == Scheme::InterImproved || **s == Scheme::Inter));
    }

    #[test]
    fn planning_eliminates_transforms() {
        for net in zoo::all() {
            let planned = plan_network(&net, adpa2(), &cfg(), true).unwrap();
            assert_eq!(planned.transform_count(), 0, "{}", net.name());
        }
    }

    #[test]
    fn unplanned_adaptive_alexnet_needs_transforms() {
        let plan = plan_network(&zoo::alexnet(), adpa2(), &cfg(), false).unwrap();
        // partition (intra-order) -> inter-improved (inter-order) switch.
        assert!(plan.transform_count() >= 1);
    }

    #[test]
    fn fixed_policies_never_transform() {
        for scheme in Scheme::ALL {
            let plan = plan_network(&zoo::alexnet(), Policy::Fixed(scheme), &cfg(), false).unwrap();
            assert_eq!(plan.transform_count(), 0, "{scheme}");
        }
    }

    #[test]
    fn vgg_has_minimal_adaptivity() {
        // Paper Sec. 5.2: "the space for adaptiveness is rather marginal".
        let vgg = plan_network(&zoo::vgg16(), adpa2(), &cfg(), true).unwrap();
        let alexnet = plan_network(&zoo::alexnet(), adpa2(), &cfg(), true).unwrap();
        assert!(vgg.scheme_switches() <= alexnet.scheme_switches() + 1);
        // Only conv1_1 has Din < 16; every other conv runs one scheme
        // (plus the fixed inter-kernel mapping of the FC classifiers).
        assert_eq!(vgg.schemes_used().len(), 3);
    }

    #[test]
    fn output_layout_matches_next_consumer() {
        let plan = plan_network(&zoo::alexnet(), adpa2(), &cfg(), true).unwrap();
        // conv1 (partition, intra-order in) must store inter-order for the
        // inter-improved conv2 downstream... with pool1 in between, the
        // lookahead still lands on conv2's preference.
        let conv1 = &plan.layers[0];
        assert_eq!(conv1.input_layout, DataLayout::IntraOrder);
        assert_eq!(conv1.output_layout, DataLayout::InterOrder);
    }

    #[test]
    fn switch_counting() {
        let plan = plan_network(&zoo::nin(), adpa2(), &cfg(), true).unwrap();
        // Partition stem -> improved-inter everything else: one switch.
        assert!(plan.scheme_switches() >= 1);
        assert!(plan.schemes_used().contains(&Scheme::Partition));
        assert!(plan.schemes_used().contains(&Scheme::InterImproved));
    }
}
