//! Whole-network execution under a parallelization policy.
//!
//! Compilation is memoized through a [`CompiledLayerCache`] and the
//! per-run compile work-list fans out over [`crate::pool`] when
//! [`RunOptions::jobs`] asks for it. Hit/miss accounting and the final
//! report are computed serially in layer order, so a parallel run is
//! byte-identical to a serial one.

use crate::adaptive::{scheme_for, Policy};
use crate::cache::{CachedLayer, CompiledLayerCache, LayerKey};
use crate::error::RunError;
use crate::pool::try_parallel_map;
use cbrain_compiler::cost::analytic_cost;
use cbrain_compiler::{
    compile_layer_batched, ideal_cycles, layout_transform_program, ConvGeometry, DataLayout, Scheme,
};
use cbrain_model::{Layer, LayerKind, Network};
use cbrain_sim::{AcceleratorConfig, EnergyBreakdown, EnergyModel, Machine, MachineOptions, Stats};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Which layers of the network a run covers.
///
/// The paper's evaluation follows its Sec. 3 scoping ("we primarily discuss
/// convolution operation, which typically makes 90% of the computational
/// workload"); [`Workload::ConvAndPool`] is the default "whole phase of
/// network forward-propagation" used for Figs. 8/10 — FC layers are pure
/// DRAM-bound weight streams identical under every scheme and would only
/// dilute the comparison. [`Workload::FullNetwork`] includes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workload {
    /// Only the first convolution layer (Fig. 7 / Fig. 9 "conv1").
    Conv1Only,
    /// All convolution layers.
    ConvLayers,
    /// Convolution and pooling layers (default).
    #[default]
    ConvAndPool,
    /// Every layer, including fully-connected classifiers.
    FullNetwork,
}

impl Workload {
    /// The canonical name (`conv1`, `conv`, `conv+pool`, `full`) — the
    /// vocabulary shared by the CLI and the serving wire protocol.
    pub const fn label(&self) -> &'static str {
        match self {
            Workload::Conv1Only => "conv1",
            Workload::ConvLayers => "conv",
            Workload::ConvAndPool => "conv+pool",
            Workload::FullNetwork => "full",
        }
    }

    fn selects(&self, layer: &Layer) -> bool {
        match (self, &layer.kind) {
            (Workload::Conv1Only, _) => unreachable!("handled by caller"),
            (Workload::ConvLayers, LayerKind::Conv(_)) => true,
            (Workload::ConvLayers, _) => false,
            (Workload::ConvAndPool, LayerKind::FullyConnected(_)) => false,
            (Workload::ConvAndPool, _) => true,
            (Workload::FullNetwork, _) => true,
        }
    }
}

/// Options for a network run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Layer subset to execute.
    pub workload: Workload,
    /// Algorithm 2 lines 4-5: store each output in the layout the next
    /// layer's scheme wants. Disabling this (ablation) charges an explicit
    /// DRAM round-trip transform whenever producer and consumer layouts
    /// disagree.
    pub layout_planning: bool,
    /// Machine execution knobs (DMA overlap, add-store ablation).
    pub machine: MachineOptions,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Images processed per run. Activations and compute scale with the
    /// batch; weights resident on chip (and FC weight streams, via the
    /// weight-chunk-outer ordering) are amortized across it.
    pub batch: usize,
    /// Worker threads for the compile work-list inside one run (the
    /// Oracle policy compiles every scheme per layer, so this is where a
    /// single run has parallelism to exploit). The report is identical
    /// for every value; `1` (the default) stays on the calling thread.
    pub jobs: usize,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from parsing a workload label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(pub String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl std::str::FromStr for Workload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "conv1" => Ok(Workload::Conv1Only),
            "conv" => Ok(Workload::ConvLayers),
            "conv+pool" => Ok(Workload::ConvAndPool),
            "full" => Ok(Workload::FullNetwork),
            other => Err(ParseWorkloadError(other.to_owned())),
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            workload: Workload::default(),
            layout_planning: true,
            machine: MachineOptions::default(),
            energy: EnergyModel::default(),
            batch: 1,
            jobs: 1,
        }
    }
}

/// Per-layer result of a run.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Scheme used (None for pooling).
    pub scheme: Option<Scheme>,
    /// Simulation statistics (transform cost included in `cycles`).
    pub stats: Stats,
    /// The 100%-utilization lower bound the paper plots as "ideal".
    pub ideal_cycles: u64,
    /// Cycles spent on an explicit layout transform before this layer
    /// (only non-zero with `layout_planning = false`).
    pub layout_transform_cycles: u64,
}

/// Whole-run result.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Images processed in this run.
    pub batch: usize,
    /// Policy used.
    pub policy: Policy,
    /// Hardware configuration.
    pub config: AcceleratorConfig,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Summed statistics.
    pub totals: Stats,
    /// Energy under the run's model.
    pub energy: EnergyBreakdown,
    /// Compiled-layer cache hits this run scored (repeated geometry
    /// inside the network, the Oracle's winner re-fetch, or entries left
    /// by earlier runs on the same [`Runner`]). Computed in a serial
    /// pre-pass, so the value is independent of [`RunOptions::jobs`].
    pub cache_hits: u64,
    /// Compiled-layer cache misses this run paid for (each one is a
    /// unique compile+simulate of a layer geometry/scheme pair).
    pub cache_misses: u64,
}

impl NetworkReport {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.totals.cycles
    }

    /// Wall-clock milliseconds at the configuration's clock.
    pub fn ms(&self) -> f64 {
        self.config.cycles_to_ms(self.totals.cycles)
    }

    /// Sum of the per-layer ideal cycle bounds.
    pub fn ideal_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.ideal_cycles).sum()
    }

    /// Speedup of this run over another (same network/workload assumed).
    pub fn speedup_over(&self, other: &NetworkReport) -> f64 {
        other.cycles() as f64 / self.cycles() as f64
    }

    /// Cycles per image (total cycles / batch).
    pub fn cycles_per_image(&self) -> f64 {
        self.totals.cycles as f64 / self.batch as f64
    }

    /// DRAM bytes per image.
    pub fn dram_bytes_per_image(&self) -> f64 {
        self.totals.dram_bytes() as f64 / self.batch as f64
    }

    /// Fraction of this run's compile lookups answered from the cache,
    /// in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Compiles and simulates one cache key's worth of work. Everything the
/// result depends on is inside the key (scheme, hardware, machine knobs,
/// batch), so any process with the layer geometry can produce — or
/// reuse — the identical entry. This is the unit of work a
/// [`CompileBackend`] executes.
///
/// # Errors
///
/// Returns a [`RunError`] if the layer fails to compile.
pub fn compile_cache_entry(layer: &Layer, key: &LayerKey) -> Result<CachedLayer, RunError> {
    let compiled = compile_layer_batched(layer, key.scheme, &key.cfg, key.batch)?;
    let stats = Machine::with_options(key.cfg, key.machine).run(&compiled.program);
    Ok(CachedLayer { compiled, stats })
}

/// How a [`Runner`] executes its compile work-list.
///
/// The default (no backend installed) fans the list over the in-process
/// [`crate::pool`] with [`RunOptions::jobs`] workers. A serving daemon
/// substitutes a backend that funnels work-lists from many concurrent
/// connections into shared batches — entries are pure functions of their
/// [`LayerKey`] (see [`compile_cache_entry`]), so any merging or
/// reordering yields the same cache contents.
pub trait CompileBackend: Send + Sync + fmt::Debug {
    /// Compiles every `(key, layer)` pair and makes each key present in
    /// `cache` before returning.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if any compile fails; keys whose compiles
    /// succeeded may or may not have been inserted.
    fn compile_batch(
        &self,
        cache: &CompiledLayerCache,
        worklist: Vec<(LayerKey, Layer)>,
    ) -> Result<(), RunError>;
}

/// The network runner: compiles each selected layer under the policy and
/// executes it on the simulated machine.
///
/// Every runner owns a [`CompiledLayerCache`]; clones share it (the
/// handle is an [`Arc`]), and [`Runner::with_cache`] lets several
/// runners pool one explicitly.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: AcceleratorConfig,
    opts: RunOptions,
    cache: Arc<CompiledLayerCache>,
    backend: Option<Arc<dyn CompileBackend>>,
}

impl Runner {
    /// Creates a runner with default options and a fresh cache.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self::with_options(cfg, RunOptions::default())
    }

    /// Creates a runner with explicit options and a fresh cache.
    pub fn with_options(cfg: AcceleratorConfig, opts: RunOptions) -> Self {
        Self {
            cfg,
            opts,
            cache: CompiledLayerCache::shared(),
            backend: None,
        }
    }

    /// Replaces the runner's cache with a shared one. Sharing trades the
    /// per-run determinism of the hit/miss *counters* for cross-runner
    /// reuse: with a shared cache, whether run B hits depends on whether
    /// run A already compiled the entry. Results are unaffected either
    /// way — a cached entry is exactly what a fresh compile would return.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<CompiledLayerCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Routes the runner's compile work-lists through an external
    /// backend instead of the in-process pool (see [`CompileBackend`]).
    #[must_use]
    pub fn with_compile_backend(mut self, backend: Arc<dyn CompileBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The runner's compiled-layer cache.
    pub fn cache(&self) -> &Arc<CompiledLayerCache> {
        &self.cache
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The run options.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// The cache keys a layer's compile will probe, in deterministic
    /// order. One key for a fixed or heuristic policy; all four schemes
    /// for the Oracle's exhaustive sweep; non-conv layers have a fixed
    /// mapping and always collapse to one `Scheme::Inter` key.
    fn probe_keys(&self, layer: &Layer, policy: Policy) -> Vec<LayerKey> {
        match layer.as_conv() {
            None => vec![LayerKey::new(layer, Scheme::Inter, &self.cfg, &self.opts)],
            Some(conv) => match policy {
                Policy::Oracle => Scheme::ALL
                    .into_iter()
                    .map(|s| LayerKey::new(layer, s, &self.cfg, &self.opts))
                    .collect(),
                Policy::OraclePruned => {
                    unreachable!("the pruned oracle has its own plan/resolve path")
                }
                _ => vec![LayerKey::new(
                    layer,
                    scheme_for(policy, conv, &self.cfg),
                    &self.cfg,
                    &self.opts,
                )],
            },
        }
    }

    /// Executes a compile work-list: through the installed
    /// [`CompileBackend`] if one is present, else over the in-process
    /// pool with [`RunOptions::jobs`] workers. On success every key in
    /// the list is present in the cache.
    fn compile_worklist(&self, worklist: Vec<(LayerKey, &Layer)>) -> Result<(), RunError> {
        if let Some(backend) = &self.backend {
            let owned = worklist
                .into_iter()
                .map(|(key, layer)| (key, layer.clone()))
                .collect();
            return backend.compile_batch(&self.cache, owned);
        }
        let compiled = try_parallel_map(self.opts.jobs, worklist, |(key, layer)| {
            compile_cache_entry(layer, &key).map(|entry| (key, entry))
        })?;
        for (key, entry) in compiled {
            self.cache.insert(key, entry);
        }
        Ok(())
    }

    /// The pruned oracle's per-layer visit order: every scheme paired
    /// with its analytic compute-cycle lower bound (scaled to the run's
    /// batch), sorted ascending. The sort is stable, so ties keep
    /// `Scheme::ALL` order — the same tie-break the exhaustive Oracle's
    /// strict-`<` minimum applies.
    fn pruned_scheme_order(&self, layer: &Layer) -> Result<Vec<(u64, Scheme)>, RunError> {
        let geom = ConvGeometry::from_layer(layer)?;
        let mut order: Vec<(u64, Scheme)> = Scheme::ALL
            .into_iter()
            .map(|s| {
                let bound = analytic_cost(&geom, s, &self.cfg)
                    .compute_cycles
                    .saturating_mul(self.opts.batch as u64);
                (bound, s)
            })
            .collect();
        order.sort_by_key(|&(bound, _)| bound);
        Ok(order)
    }

    /// How many of the cheapest-bound candidates the pruned oracle
    /// simulates unconditionally per conv layer. Fanning this pair onto
    /// the job pool (or a remote backend) as one batch recovers compile
    /// parallelism inside the pruned search; everything after the pair
    /// keeps the serial bound-skip. Extra speculative simulations only
    /// tighten the running bound — selection is unchanged because the
    /// winner is the `Scheme::ALL`-order strict-`<` minimum over
    /// whatever was simulated, and every possible minimum is.
    const PRUNED_SPECULATION: usize = 2;

    /// The pruned oracle's phase 1+2: simulate the two cheapest-bound
    /// candidates unconditionally (compiled as one batch through the
    /// pool or [`CompileBackend`]), then visit the remaining schemes
    /// cheapest-bound-first, skipping any whose analytic lower bound
    /// already exceeds the best simulated candidate. Sound because the
    /// machine's total can never undercut its compute cycles
    /// (`stats.cycles >= compute_cycles`): a skipped scheme's true cycle
    /// count exceeds the running best, so it can be neither the minimum
    /// nor a `Scheme::ALL`-order tie for it. The speculative pair is a
    /// fixed prefix of the deterministic bound order, so the visit set —
    /// and with it the hit/miss counters — is identical at every
    /// [`RunOptions::jobs`] value and under any backend.
    fn plan_and_compile_pruned(&self, layers: &[&Layer]) -> Result<(u64, u64), RunError> {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &layer in layers {
            if layer.as_conv().is_none() {
                let key = LayerKey::new(layer, Scheme::Inter, &self.cfg, &self.opts);
                if self.cache.contains(&key) {
                    hits += 1;
                } else {
                    misses += 1;
                    self.compile_worklist(vec![(key, layer)])?;
                }
                continue;
            }
            let order = self.pruned_scheme_order(layer)?;
            let spec_n = order.len().min(Self::PRUNED_SPECULATION);

            // Speculative prefix: account, then compile as one batch.
            let mut pair: Vec<(LayerKey, &Layer)> = Vec::new();
            for &(_, scheme) in &order[..spec_n] {
                let key = LayerKey::new(layer, scheme, &self.cfg, &self.opts);
                if self.cache.contains(&key) {
                    hits += 1;
                } else {
                    misses += 1;
                    pair.push((key, layer));
                }
            }
            self.compile_worklist(pair)?;
            let mut best: Option<u64> = None;
            for &(_, scheme) in &order[..spec_n] {
                let key = LayerKey::new(layer, scheme, &self.cfg, &self.opts);
                let entry = self
                    .cache
                    .peek(&key)
                    .expect("the speculative pair was just compiled");
                best = Some(best.map_or(entry.stats.cycles, |b| b.min(entry.stats.cycles)));
            }

            // Tail: serial bound-skip, each result tightening the bound.
            for &(bound, scheme) in &order[spec_n..] {
                if best.is_some_and(|b| bound > b) {
                    continue;
                }
                let key = LayerKey::new(layer, scheme, &self.cfg, &self.opts);
                let entry = match self.cache.peek(&key) {
                    Some(entry) => {
                        hits += 1;
                        entry
                    }
                    None => {
                        misses += 1;
                        self.compile_worklist(vec![(key, layer)])?;
                        self.cache
                            .peek(&key)
                            .expect("compile_worklist cached the key")
                    }
                };
                best = Some(best.map_or(entry.stats.cycles, |b| b.min(entry.stats.cycles)));
            }
            // Winner re-fetch, mirroring the exhaustive Oracle's
            // accounting convention.
            hits += 1;
        }
        self.cache.record(hits, misses);
        Ok((hits, misses))
    }

    /// Phase 1+2 of a run: serial hit/miss accounting over every probe
    /// key in layer order, then a (possibly parallel) compile of the
    /// unique misses. Returns `(hits, misses)` for the report; on return
    /// every probe key is present in the cache.
    ///
    /// The accounting happens *before* any compile, against the cache
    /// state at entry plus a local seen-set — so the counts depend only
    /// on the layer sequence and prior cache contents, never on how the
    /// compile work-list is scheduled across threads.
    fn plan_and_compile(&self, layers: &[&Layer], policy: Policy) -> Result<(u64, u64), RunError> {
        if policy == Policy::OraclePruned {
            return self.plan_and_compile_pruned(layers);
        }
        let mut seen: HashSet<LayerKey> = HashSet::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut worklist: Vec<(LayerKey, &Layer)> = Vec::new();
        for layer in layers {
            for key in self.probe_keys(layer, policy) {
                if self.cache.contains(&key) || seen.contains(&key) {
                    hits += 1;
                } else {
                    misses += 1;
                    seen.insert(key);
                    worklist.push((key, layer));
                }
            }
            if policy == Policy::Oracle && layer.as_conv().is_some() {
                // After the sweep the winning scheme is fetched back out
                // of the cache: a guaranteed hit on every Oracle layer.
                hits += 1;
            }
        }
        self.compile_worklist(worklist)?;
        self.cache.record(hits, misses);
        Ok((hits, misses))
    }

    /// Fetches the cached entry a layer executes under `policy`; for the
    /// Oracle that is the cheapest scheme (ties broken in `Scheme::ALL`
    /// order). Every key must already be cached (see `plan_and_compile`).
    fn resolve(&self, layer: &Layer, policy: Policy) -> Arc<CachedLayer> {
        if policy == Policy::OraclePruned {
            return self.resolve_pruned(layer);
        }
        let mut best: Option<Arc<CachedLayer>> = None;
        for key in self.probe_keys(layer, policy) {
            let entry = self
                .cache
                .peek(&key)
                .expect("plan_and_compile cached every probe key");
            if best
                .as_ref()
                .is_none_or(|b| entry.stats.cycles < b.stats.cycles)
            {
                best = Some(entry);
            }
        }
        best.expect("probe_keys is non-empty")
    }

    /// The pruned oracle's resolve: replay the bound-ordered visit with
    /// the same speculative prefix and skip rule (everything visited is
    /// cached by `plan_and_compile_pruned`), then pick the winner among
    /// the simulated candidates in `Scheme::ALL` order with a strict `<`
    /// — exactly the exhaustive Oracle's selection. A pruned scheme's
    /// true cycle count strictly exceeds the final minimum, so every
    /// minimum (and every `Scheme::ALL`-order tie for it) was simulated.
    fn resolve_pruned(&self, layer: &Layer) -> Arc<CachedLayer> {
        if layer.as_conv().is_none() {
            let key = LayerKey::new(layer, Scheme::Inter, &self.cfg, &self.opts);
            return self
                .cache
                .peek(&key)
                .expect("plan_and_compile_pruned cached every non-conv key");
        }
        let order = self
            .pruned_scheme_order(layer)
            .expect("plan_and_compile_pruned already computed this order");
        let spec_n = order.len().min(Self::PRUNED_SPECULATION);
        let mut best_cycles: Option<u64> = None;
        let mut simulated: Vec<(Scheme, Arc<CachedLayer>)> = Vec::new();
        for (i, (bound, scheme)) in order.into_iter().enumerate() {
            if i >= spec_n && best_cycles.is_some_and(|b| bound > b) {
                continue;
            }
            let key = LayerKey::new(layer, scheme, &self.cfg, &self.opts);
            let entry = self
                .cache
                .peek(&key)
                .expect("plan_and_compile_pruned cached every visited key");
            best_cycles =
                Some(best_cycles.map_or(entry.stats.cycles, |b| b.min(entry.stats.cycles)));
            simulated.push((scheme, entry));
        }
        let mut best: Option<Arc<CachedLayer>> = None;
        for scheme in Scheme::ALL {
            let Some((_, entry)) = simulated.iter().find(|(s, _)| *s == scheme) else {
                continue;
            };
            if best
                .as_ref()
                .is_none_or(|b| entry.stats.cycles < b.stats.cycles)
            {
                best = Some(Arc::clone(entry));
            }
        }
        best.expect("at least one scheme is always simulated")
    }

    /// Runs one layer in isolation (no layout-transform accounting).
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the layer fails to compile.
    pub fn run_layer(&self, layer: &Layer, policy: Policy) -> Result<LayerReport, RunError> {
        self.plan_and_compile(&[layer], policy)?;
        let entry = self.resolve(layer, policy);
        Ok(LayerReport {
            name: layer.name.clone(),
            scheme: entry.compiled.scheme,
            stats: entry.stats,
            ideal_cycles: ideal_cycles(layer, &self.cfg)?,
            layout_transform_cycles: 0,
        })
    }

    /// Runs the selected workload of a network under a policy.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on compile failure or an empty selection.
    ///
    /// # Examples
    ///
    /// ```
    /// use cbrain::{Policy, Runner};
    /// use cbrain_model::zoo;
    /// use cbrain_sim::AcceleratorConfig;
    ///
    /// let runner = Runner::new(AcceleratorConfig::paper_16_16());
    /// let net = zoo::alexnet();
    /// let inter = runner.run_network(&net, Policy::PAPER_ARMS[0])?;
    /// let adaptive = runner.run_network(&net, Policy::PAPER_ARMS[4])?;
    /// assert!(adaptive.speedup_over(&inter) > 1.2);
    /// # Ok::<(), cbrain::RunError>(())
    /// ```
    pub fn run_network(&self, net: &Network, policy: Policy) -> Result<NetworkReport, RunError> {
        self.run_network_streamed(net, policy, |_| {})
    }

    /// [`Runner::run_network`] with a per-layer callback: `on_layer` is
    /// invoked with each [`LayerReport`] as the serial merge pass
    /// finishes it, in execution order. The serving daemon streams these
    /// to clients while the run is still in flight; the final
    /// [`NetworkReport`] contains the same reports in the same order.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on compile failure or an empty selection.
    pub fn run_network_streamed(
        &self,
        net: &Network,
        policy: Policy,
        mut on_layer: impl FnMut(&LayerReport),
    ) -> Result<NetworkReport, RunError> {
        let machine = Machine::with_options(self.cfg, self.opts.machine);
        let selected: Vec<&Layer> = match self.opts.workload {
            Workload::Conv1Only => net.conv_layers().take(1).collect(),
            w => net.layers().iter().filter(|l| w.selects(l)).collect(),
        };
        if selected.is_empty() {
            return Err(RunError::EmptyWorkload {
                network: net.name().to_owned(),
            });
        }

        // Phase 1+2: deterministic accounting, then compile the unique
        // misses (in parallel when opts.jobs > 1).
        let (cache_hits, cache_misses) = self.plan_and_compile(&selected, policy)?;

        // Phase 3: serial merge in layer order. Every compile is a cache
        // fetch now, so this pass is cheap and its output — including the
        // layout-transform chain, which threads state layer to layer — is
        // identical however phase 2 was scheduled.
        let mut layers = Vec::with_capacity(selected.len());
        let mut totals = Stats::new();
        // Layout of the tensor currently in memory: the raw image arrives in
        // whatever order the first layer wants (free choice at load time).
        let mut current_layout: Option<DataLayout> = None;

        for layer in selected {
            let entry = self.resolve(layer, policy);
            let mut transform_cycles = 0;
            if let Some(prev) = current_layout {
                let needs_transform = !self.opts.layout_planning
                    && prev != entry.compiled.wants_input_layout
                    && matches!(layer.kind, LayerKind::Conv(_));
                if needs_transform {
                    let t = machine.run(&layout_transform_program(layer.input, &layer.name));
                    transform_cycles = t.cycles;
                    totals += t;
                }
            }
            let stats = entry.stats;
            totals += stats;
            current_layout = Some(if self.opts.layout_planning {
                // Algorithm 2 lines 4-5: the output is stored in whatever
                // order the consumer will want, so it always matches.
                entry.compiled.wants_input_layout
            } else {
                entry.compiled.output_layout
            });
            layers.push(LayerReport {
                name: layer.name.clone(),
                scheme: entry.compiled.scheme,
                stats,
                ideal_cycles: ideal_cycles(layer, &self.cfg)? * self.opts.batch as u64,
                layout_transform_cycles: transform_cycles,
            });
            on_layer(layers.last().expect("just pushed"));
        }

        let energy = self.opts.energy.evaluate(&totals);
        Ok(NetworkReport {
            network: net.name().to_owned(),
            batch: self.opts.batch,
            policy,
            config: self.cfg,
            layers,
            totals,
            energy,
            cache_hits,
            cache_misses,
        })
    }

    /// Runs all five paper arms on a network, in Fig. 8 order.
    ///
    /// # Errors
    ///
    /// Returns the first failing arm's [`RunError`].
    pub fn run_paper_arms(&self, net: &Network) -> Result<Vec<NetworkReport>, RunError> {
        Policy::PAPER_ARMS
            .iter()
            .map(|&p| self.run_network(net, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::zoo;

    fn runner() -> Runner {
        Runner::new(AcceleratorConfig::paper_16_16())
    }

    fn conv1_runner() -> Runner {
        Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::Conv1Only,
                ..RunOptions::default()
            },
        )
    }

    #[test]
    fn conv1_partition_beats_inter_and_intra() {
        // Fig. 7's ordering: partition <= intra < inter on conv1.
        let net = zoo::alexnet();
        let r = conv1_runner();
        let inter = r.run_network(&net, Policy::Fixed(Scheme::Inter)).unwrap();
        let intra = r.run_network(&net, Policy::Fixed(Scheme::Intra)).unwrap();
        let part = r
            .run_network(&net, Policy::Fixed(Scheme::Partition))
            .unwrap();
        assert!(part.cycles() < intra.cycles());
        assert!(intra.cycles() < inter.cycles());
        // Partition approaches the ideal bound.
        let ratio = part.cycles() as f64 / part.ideal_cycles() as f64;
        assert!(ratio < 1.5, "ratio={ratio}");
    }

    #[test]
    fn adaptive_beats_every_fixed_scheme_on_alexnet() {
        let net = zoo::alexnet();
        let r = runner();
        let reports = r.run_paper_arms(&net).unwrap();
        let adpa2 = reports[4].cycles();
        for fixed in &reports[..3] {
            assert!(
                adpa2 <= fixed.cycles(),
                "adpa-2 {} vs {} {}",
                adpa2,
                fixed.policy,
                fixed.cycles()
            );
        }
    }

    #[test]
    fn adpa_arms_match_in_cycles_but_not_traffic() {
        // Paper: "adpa-1 and adpa-2 are the same on performance, and their
        // difference are in energy".
        let net = zoo::alexnet();
        let reports = runner().run_paper_arms(&net).unwrap();
        let (a1, a2) = (&reports[3], &reports[4]);
        let cycle_ratio = a2.cycles() as f64 / a1.cycles() as f64;
        assert!(
            (0.99..1.01).contains(&cycle_ratio),
            "cycle_ratio={cycle_ratio}"
        );
        assert!(a2.totals.buffer_access_bits() < a1.totals.buffer_access_bits() / 4);
    }

    #[test]
    fn alexnet_adaptive_speedup_in_paper_ballpark() {
        // Paper: adpa outperforms inter by 1.83x on AlexNet; our simulator
        // should land in the same regime (>1.3x).
        let net = zoo::alexnet();
        let reports = runner().run_paper_arms(&net).unwrap();
        let speedup = reports[4].speedup_over(&reports[0]);
        assert!(speedup > 1.3, "speedup={speedup}");
        assert!(speedup < 3.0, "speedup={speedup}");
    }

    #[test]
    fn vgg_speedup_is_marginal() {
        // Paper Sec. 5.2: VGG's uniform 3x3/s1 layers leave little room.
        let net = zoo::vgg16();
        let r = runner();
        let inter = r.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let adpa = r.run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        let speedup = adpa.speedup_over(&inter);
        assert!(speedup < 1.3, "speedup={speedup}");
        assert!(speedup >= 0.99, "speedup={speedup}");
    }

    #[test]
    fn workload_filters() {
        let net = zoo::alexnet();
        let conv_only = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::ConvLayers,
                ..RunOptions::default()
            },
        );
        let full = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::FullNetwork,
                ..RunOptions::default()
            },
        );
        let a = conv_only.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let b = full.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        assert_eq!(a.layers.len(), 5);
        assert_eq!(b.layers.len(), net.layers().len());
        assert!(b.cycles() > a.cycles());
    }

    #[test]
    fn layout_planning_ablation_adds_transforms() {
        // Alternate schemes (adaptive on AlexNet: partition then inter)
        // force transforms when planning is off.
        let net = zoo::alexnet();
        let planned = runner().run_network(&net, Policy::PAPER_ARMS[3]).unwrap();
        let unplanned = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                layout_planning: false,
                ..RunOptions::default()
            },
        )
        .run_network(&net, Policy::PAPER_ARMS[3])
        .unwrap();
        assert!(unplanned.cycles() > planned.cycles());
        let transforms: u64 = unplanned
            .layers
            .iter()
            .map(|l| l.layout_transform_cycles)
            .sum();
        assert!(transforms > 0);
        let planned_transforms: u64 = planned
            .layers
            .iter()
            .map(|l| l.layout_transform_cycles)
            .sum();
        assert_eq!(planned_transforms, 0);
    }

    #[test]
    fn report_totals_are_layer_sums() {
        let net = zoo::alexnet();
        let report = runner().run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let sum: u64 = report.layers.iter().map(|l| l.stats.cycles).sum();
        assert_eq!(report.cycles(), sum);
        assert!(report.ms() > 0.0);
    }

    #[test]
    fn oracle_never_loses_to_any_fixed_scheme() {
        let r = runner();
        for net in zoo::all() {
            let oracle = r.run_network(&net, Policy::Oracle).unwrap();
            for scheme in Scheme::ALL {
                let fixed = r.run_network(&net, Policy::Fixed(scheme)).unwrap();
                assert!(
                    oracle.cycles() <= fixed.cycles(),
                    "{}: oracle {} vs {scheme} {}",
                    net.name(),
                    oracle.cycles(),
                    fixed.cycles()
                );
            }
        }
    }

    #[test]
    fn algorithm_2_is_near_oracle() {
        // The paper's heuristic should capture nearly all of the win an
        // exhaustive per-layer search can find.
        let r = runner();
        for net in zoo::all() {
            let oracle = r.run_network(&net, Policy::Oracle).unwrap();
            let adpa2 = r
                .run_network(
                    &net,
                    Policy::Adaptive {
                        improved_inter: true,
                    },
                )
                .unwrap();
            let gap = adpa2.cycles() as f64 / oracle.cycles() as f64;
            assert!(gap < 1.10, "{}: gap {gap}", net.name());
        }
    }

    #[test]
    fn batching_amortizes_fc_weight_streams() {
        use cbrain_model::zoo;
        let net = zoo::alexnet();
        let mk = |batch| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    workload: Workload::FullNetwork,
                    batch,
                    ..RunOptions::default()
                },
            )
        };
        let one = mk(1).run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        let eight = mk(8).run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        // FC layers dominate AlexNet's DRAM traffic at batch 1; batching
        // divides that stream, so per-image traffic and cycles both drop.
        assert!(eight.dram_bytes_per_image() < 0.4 * one.dram_bytes_per_image());
        assert!(eight.cycles_per_image() < one.cycles_per_image());
        // Compute (MACs) still scales exactly with the batch.
        assert_eq!(eight.totals.mac_ops, 8 * one.totals.mac_ops);
    }

    #[test]
    fn conv_only_batching_is_nearly_linear() {
        use cbrain_model::zoo;
        let net = zoo::vgg16();
        let mk = |batch| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    batch,
                    ..RunOptions::default()
                },
            )
        };
        let one = mk(1).run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let four = mk(4).run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let ratio = four.cycles() as f64 / one.cycles() as f64;
        assert!((3.8..=4.05).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn vgg_scores_cache_hits_even_cold() {
        // VGG16 repeats conv geometries within blocks (conv3_2 == conv3_3
        // etc.), so a fresh runner still reuses compiled layers.
        let report = runner()
            .run_network(&zoo::vgg16(), Policy::PAPER_ARMS[0])
            .unwrap();
        assert!(report.cache_hits > 0, "hits={}", report.cache_hits);
        assert!(report.cache_misses > 0);
        assert!(report.cache_hit_rate() > 0.0);
        assert!(report.cache_hit_rate() < 1.0);
    }

    #[test]
    fn oracle_always_scores_cache_hits() {
        // The Oracle sweep fetches its winner back out of the cache, so
        // every Oracle run on every network reports hits.
        let r = runner();
        for net in zoo::all() {
            let report = r.run_network(&net, Policy::Oracle).unwrap();
            assert!(report.cache_hits > 0, "{}", net.name());
        }
    }

    #[test]
    fn repeat_run_is_all_hits_and_identical() {
        let r = runner();
        let net = zoo::alexnet();
        let first = r.run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        let second = r.run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cache_hits, first.cache_hits + first.cache_misses);
        assert_eq!(second.cycles(), first.cycles());
        assert_eq!(second.totals, first.totals);
    }

    #[test]
    fn shared_cache_crosses_runners() {
        let cache = crate::cache::CompiledLayerCache::shared();
        let net = zoo::alexnet();
        let a = Runner::new(AcceleratorConfig::paper_16_16()).with_cache(Arc::clone(&cache));
        let b = Runner::new(AcceleratorConfig::paper_16_16()).with_cache(Arc::clone(&cache));
        let first = a.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let second = b.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        assert!(first.cache_misses > 0);
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.cycles(), first.cycles());
        assert!(cache.hits() >= second.cache_hits);
    }

    #[test]
    fn parallel_run_is_identical_to_serial() {
        // The tentpole guarantee: jobs only changes wall-clock, never a
        // single field of the report — including the cache counters.
        let mk = |jobs| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    jobs,
                    ..RunOptions::default()
                },
            )
        };
        for net in zoo::all() {
            for policy in [Policy::Oracle, Policy::OraclePruned, Policy::PAPER_ARMS[4]] {
                let serial = mk(1).run_network(&net, policy).unwrap();
                let parallel = mk(4).run_network(&net, policy).unwrap();
                assert_eq!(
                    format!("{serial:?}"),
                    format!("{parallel:?}"),
                    "{}",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn batch_and_machine_options_split_cache_entries() {
        let net = zoo::alexnet();
        let mk = |batch, overlap_dma| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    batch,
                    machine: MachineOptions {
                        overlap_dma,
                        ..MachineOptions::default()
                    },
                    ..RunOptions::default()
                },
            )
        };
        let cache = crate::cache::CompiledLayerCache::shared();
        let a = mk(1, true).with_cache(Arc::clone(&cache));
        let b = mk(2, true).with_cache(Arc::clone(&cache));
        let c = mk(1, false).with_cache(Arc::clone(&cache));
        a.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        // Different batch and different machine knobs must not reuse the
        // batch-1/overlap entries: both runs recompile everything.
        assert_eq!(
            b.run_network(&net, Policy::PAPER_ARMS[0])
                .unwrap()
                .cache_hits,
            0
        );
        assert_eq!(
            c.run_network(&net, Policy::PAPER_ARMS[0])
                .unwrap()
                .cache_hits,
            0
        );
    }

    #[test]
    fn all_networks_run_all_arms() {
        let r = runner();
        for net in zoo::all() {
            let reports = r.run_paper_arms(&net).unwrap();
            assert_eq!(reports.len(), 5, "{}", net.name());
            for rep in &reports {
                assert!(rep.cycles() > 0, "{} {}", net.name(), rep.policy);
                assert!(rep.energy.total_pj() > 0.0);
            }
        }
    }
}
