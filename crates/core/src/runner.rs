//! Whole-network execution under a parallelization policy.

use crate::adaptive::{scheme_for, Policy};
use crate::error::RunError;
use cbrain_compiler::{
    compile_layer_batched, ideal_cycles, layout_transform_program, CompiledLayer, DataLayout,
    Scheme,
};
use cbrain_model::{Layer, LayerKind, Network};
use cbrain_sim::{
    AcceleratorConfig, EnergyBreakdown, EnergyModel, Machine, MachineOptions, Stats,
};

/// Which layers of the network a run covers.
///
/// The paper's evaluation follows its Sec. 3 scoping ("we primarily discuss
/// convolution operation, which typically makes 90% of the computational
/// workload"); [`Workload::ConvAndPool`] is the default "whole phase of
/// network forward-propagation" used for Figs. 8/10 — FC layers are pure
/// DRAM-bound weight streams identical under every scheme and would only
/// dilute the comparison. [`Workload::FullNetwork`] includes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Workload {
    /// Only the first convolution layer (Fig. 7 / Fig. 9 "conv1").
    Conv1Only,
    /// All convolution layers.
    ConvLayers,
    /// Convolution and pooling layers (default).
    #[default]
    ConvAndPool,
    /// Every layer, including fully-connected classifiers.
    FullNetwork,
}

impl Workload {
    fn selects(&self, layer: &Layer) -> bool {
        match (self, &layer.kind) {
            (Workload::Conv1Only, _) => unreachable!("handled by caller"),
            (Workload::ConvLayers, LayerKind::Conv(_)) => true,
            (Workload::ConvLayers, _) => false,
            (Workload::ConvAndPool, LayerKind::FullyConnected(_)) => false,
            (Workload::ConvAndPool, _) => true,
            (Workload::FullNetwork, _) => true,
        }
    }
}

/// Options for a network run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Layer subset to execute.
    pub workload: Workload,
    /// Algorithm 2 lines 4-5: store each output in the layout the next
    /// layer's scheme wants. Disabling this (ablation) charges an explicit
    /// DRAM round-trip transform whenever producer and consumer layouts
    /// disagree.
    pub layout_planning: bool,
    /// Machine execution knobs (DMA overlap, add-store ablation).
    pub machine: MachineOptions,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Images processed per run. Activations and compute scale with the
    /// batch; weights resident on chip (and FC weight streams, via the
    /// weight-chunk-outer ordering) are amortized across it.
    pub batch: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            workload: Workload::default(),
            layout_planning: true,
            machine: MachineOptions::default(),
            energy: EnergyModel::default(),
            batch: 1,
        }
    }
}

/// Per-layer result of a run.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Scheme used (None for pooling).
    pub scheme: Option<Scheme>,
    /// Simulation statistics (transform cost included in `cycles`).
    pub stats: Stats,
    /// The 100%-utilization lower bound the paper plots as "ideal".
    pub ideal_cycles: u64,
    /// Cycles spent on an explicit layout transform before this layer
    /// (only non-zero with `layout_planning = false`).
    pub layout_transform_cycles: u64,
}

/// Whole-run result.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Images processed in this run.
    pub batch: usize,
    /// Policy used.
    pub policy: Policy,
    /// Hardware configuration.
    pub config: AcceleratorConfig,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// Summed statistics.
    pub totals: Stats,
    /// Energy under the run's model.
    pub energy: EnergyBreakdown,
}

impl NetworkReport {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.totals.cycles
    }

    /// Wall-clock milliseconds at the configuration's clock.
    pub fn ms(&self) -> f64 {
        self.config.cycles_to_ms(self.totals.cycles)
    }

    /// Sum of the per-layer ideal cycle bounds.
    pub fn ideal_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.ideal_cycles).sum()
    }

    /// Speedup of this run over another (same network/workload assumed).
    pub fn speedup_over(&self, other: &NetworkReport) -> f64 {
        other.cycles() as f64 / self.cycles() as f64
    }

    /// Cycles per image (total cycles / batch).
    pub fn cycles_per_image(&self) -> f64 {
        self.totals.cycles as f64 / self.batch as f64
    }

    /// DRAM bytes per image.
    pub fn dram_bytes_per_image(&self) -> f64 {
        self.totals.dram_bytes() as f64 / self.batch as f64
    }
}

/// The network runner: compiles each selected layer under the policy and
/// executes it on the simulated machine.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: AcceleratorConfig,
    opts: RunOptions,
}

impl Runner {
    /// Creates a runner with default options.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            cfg,
            opts: RunOptions::default(),
        }
    }

    /// Creates a runner with explicit options.
    pub fn with_options(cfg: AcceleratorConfig, opts: RunOptions) -> Self {
        Self { cfg, opts }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The run options.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    fn compile(&self, layer: &Layer, policy: Policy) -> Result<CompiledLayer, RunError> {
        let Some(conv) = layer.as_conv() else {
            // Pools and FC layers have a fixed mapping; the scheme argument
            // is ignored by their compilers.
            return Ok(compile_layer_batched(
                layer,
                Scheme::Inter,
                &self.cfg,
                self.opts.batch,
            )?);
        };
        if policy == Policy::Oracle {
            // Exhaustive search: simulate every scheme, keep the cheapest.
            let machine = Machine::with_options(self.cfg, self.opts.machine);
            let mut best: Option<(u64, CompiledLayer)> = None;
            for scheme in Scheme::ALL {
                let compiled = compile_layer_batched(layer, scheme, &self.cfg, self.opts.batch)?;
                let cycles = machine.run(&compiled.program).cycles;
                if best.as_ref().is_none_or(|(b, _)| cycles < *b) {
                    best = Some((cycles, compiled));
                }
            }
            return Ok(best.expect("Scheme::ALL is non-empty").1);
        }
        let scheme = scheme_for(policy, conv, &self.cfg);
        Ok(compile_layer_batched(
            layer,
            scheme,
            &self.cfg,
            self.opts.batch,
        )?)
    }

    /// Runs one layer in isolation (no layout-transform accounting).
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the layer fails to compile.
    pub fn run_layer(&self, layer: &Layer, policy: Policy) -> Result<LayerReport, RunError> {
        let machine = Machine::with_options(self.cfg, self.opts.machine);
        let compiled = self.compile(layer, policy)?;
        let stats = machine.run(&compiled.program);
        Ok(LayerReport {
            name: layer.name.clone(),
            scheme: compiled.scheme,
            stats,
            ideal_cycles: ideal_cycles(layer, &self.cfg)?,
            layout_transform_cycles: 0,
        })
    }

    /// Runs the selected workload of a network under a policy.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on compile failure or an empty selection.
    ///
    /// # Examples
    ///
    /// ```
    /// use cbrain::{Policy, Runner};
    /// use cbrain_model::zoo;
    /// use cbrain_sim::AcceleratorConfig;
    ///
    /// let runner = Runner::new(AcceleratorConfig::paper_16_16());
    /// let net = zoo::alexnet();
    /// let inter = runner.run_network(&net, Policy::PAPER_ARMS[0])?;
    /// let adaptive = runner.run_network(&net, Policy::PAPER_ARMS[4])?;
    /// assert!(adaptive.speedup_over(&inter) > 1.2);
    /// # Ok::<(), cbrain::RunError>(())
    /// ```
    pub fn run_network(&self, net: &Network, policy: Policy) -> Result<NetworkReport, RunError> {
        let machine = Machine::with_options(self.cfg, self.opts.machine);
        let selected: Vec<&Layer> = match self.opts.workload {
            Workload::Conv1Only => net.conv_layers().take(1).collect(),
            w => net.layers().iter().filter(|l| w.selects(l)).collect(),
        };
        if selected.is_empty() {
            return Err(RunError::EmptyWorkload {
                network: net.name().to_owned(),
            });
        }

        let mut layers = Vec::with_capacity(selected.len());
        let mut totals = Stats::new();
        // Layout of the tensor currently in memory: the raw image arrives in
        // whatever order the first layer wants (free choice at load time).
        let mut current_layout: Option<DataLayout> = None;

        for layer in selected {
            let compiled = self.compile(layer, policy)?;
            let mut transform_cycles = 0;
            if let Some(prev) = current_layout {
                let needs_transform = !self.opts.layout_planning
                    && prev != compiled.wants_input_layout
                    && matches!(layer.kind, LayerKind::Conv(_));
                if needs_transform {
                    let t = machine.run(&layout_transform_program(layer.input, &layer.name));
                    transform_cycles = t.cycles;
                    totals += t;
                }
            }
            let stats = machine.run(&compiled.program);
            totals += stats;
            current_layout = Some(if self.opts.layout_planning {
                // Algorithm 2 lines 4-5: the output is stored in whatever
                // order the consumer will want, so it always matches.
                compiled.wants_input_layout
            } else {
                compiled.output_layout
            });
            layers.push(LayerReport {
                name: layer.name.clone(),
                scheme: compiled.scheme,
                stats,
                ideal_cycles: ideal_cycles(layer, &self.cfg)? * self.opts.batch as u64,
                layout_transform_cycles: transform_cycles,
            });
        }

        let energy = self.opts.energy.evaluate(&totals);
        Ok(NetworkReport {
            network: net.name().to_owned(),
            batch: self.opts.batch,
            policy,
            config: self.cfg,
            layers,
            totals,
            energy,
        })
    }

    /// Runs all five paper arms on a network, in Fig. 8 order.
    ///
    /// # Errors
    ///
    /// Returns the first failing arm's [`RunError`].
    pub fn run_paper_arms(&self, net: &Network) -> Result<Vec<NetworkReport>, RunError> {
        Policy::PAPER_ARMS
            .iter()
            .map(|&p| self.run_network(net, p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::zoo;

    fn runner() -> Runner {
        Runner::new(AcceleratorConfig::paper_16_16())
    }

    fn conv1_runner() -> Runner {
        Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::Conv1Only,
                ..RunOptions::default()
            },
        )
    }

    #[test]
    fn conv1_partition_beats_inter_and_intra() {
        // Fig. 7's ordering: partition <= intra < inter on conv1.
        let net = zoo::alexnet();
        let r = conv1_runner();
        let inter = r.run_network(&net, Policy::Fixed(Scheme::Inter)).unwrap();
        let intra = r.run_network(&net, Policy::Fixed(Scheme::Intra)).unwrap();
        let part = r
            .run_network(&net, Policy::Fixed(Scheme::Partition))
            .unwrap();
        assert!(part.cycles() < intra.cycles());
        assert!(intra.cycles() < inter.cycles());
        // Partition approaches the ideal bound.
        let ratio = part.cycles() as f64 / part.ideal_cycles() as f64;
        assert!(ratio < 1.5, "ratio={ratio}");
    }

    #[test]
    fn adaptive_beats_every_fixed_scheme_on_alexnet() {
        let net = zoo::alexnet();
        let r = runner();
        let reports = r.run_paper_arms(&net).unwrap();
        let adpa2 = reports[4].cycles();
        for fixed in &reports[..3] {
            assert!(
                adpa2 <= fixed.cycles(),
                "adpa-2 {} vs {} {}",
                adpa2,
                fixed.policy,
                fixed.cycles()
            );
        }
    }

    #[test]
    fn adpa_arms_match_in_cycles_but_not_traffic() {
        // Paper: "adpa-1 and adpa-2 are the same on performance, and their
        // difference are in energy".
        let net = zoo::alexnet();
        let reports = runner().run_paper_arms(&net).unwrap();
        let (a1, a2) = (&reports[3], &reports[4]);
        let cycle_ratio = a2.cycles() as f64 / a1.cycles() as f64;
        assert!(
            (0.99..1.01).contains(&cycle_ratio),
            "cycle_ratio={cycle_ratio}"
        );
        assert!(a2.totals.buffer_access_bits() < a1.totals.buffer_access_bits() / 4);
    }

    #[test]
    fn alexnet_adaptive_speedup_in_paper_ballpark() {
        // Paper: adpa outperforms inter by 1.83x on AlexNet; our simulator
        // should land in the same regime (>1.3x).
        let net = zoo::alexnet();
        let reports = runner().run_paper_arms(&net).unwrap();
        let speedup = reports[4].speedup_over(&reports[0]);
        assert!(speedup > 1.3, "speedup={speedup}");
        assert!(speedup < 3.0, "speedup={speedup}");
    }

    #[test]
    fn vgg_speedup_is_marginal() {
        // Paper Sec. 5.2: VGG's uniform 3x3/s1 layers leave little room.
        let net = zoo::vgg16();
        let r = runner();
        let inter = r.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let adpa = r.run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        let speedup = adpa.speedup_over(&inter);
        assert!(speedup < 1.3, "speedup={speedup}");
        assert!(speedup >= 0.99, "speedup={speedup}");
    }

    #[test]
    fn workload_filters() {
        let net = zoo::alexnet();
        let conv_only = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::ConvLayers,
                ..RunOptions::default()
            },
        );
        let full = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                workload: Workload::FullNetwork,
                ..RunOptions::default()
            },
        );
        let a = conv_only.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let b = full.run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        assert_eq!(a.layers.len(), 5);
        assert_eq!(b.layers.len(), net.layers().len());
        assert!(b.cycles() > a.cycles());
    }

    #[test]
    fn layout_planning_ablation_adds_transforms() {
        // Alternate schemes (adaptive on AlexNet: partition then inter)
        // force transforms when planning is off.
        let net = zoo::alexnet();
        let planned = runner()
            .run_network(&net, Policy::PAPER_ARMS[3])
            .unwrap();
        let unplanned = Runner::with_options(
            AcceleratorConfig::paper_16_16(),
            RunOptions {
                layout_planning: false,
                ..RunOptions::default()
            },
        )
        .run_network(&net, Policy::PAPER_ARMS[3])
        .unwrap();
        assert!(unplanned.cycles() > planned.cycles());
        let transforms: u64 = unplanned
            .layers
            .iter()
            .map(|l| l.layout_transform_cycles)
            .sum();
        assert!(transforms > 0);
        let planned_transforms: u64 = planned
            .layers
            .iter()
            .map(|l| l.layout_transform_cycles)
            .sum();
        assert_eq!(planned_transforms, 0);
    }

    #[test]
    fn report_totals_are_layer_sums() {
        let net = zoo::alexnet();
        let report = runner().run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let sum: u64 = report.layers.iter().map(|l| l.stats.cycles).sum();
        assert_eq!(report.cycles(), sum);
        assert!(report.ms() > 0.0);
    }

    #[test]
    fn oracle_never_loses_to_any_fixed_scheme() {
        let r = runner();
        for net in zoo::all() {
            let oracle = r.run_network(&net, Policy::Oracle).unwrap();
            for scheme in Scheme::ALL {
                let fixed = r.run_network(&net, Policy::Fixed(scheme)).unwrap();
                assert!(
                    oracle.cycles() <= fixed.cycles(),
                    "{}: oracle {} vs {scheme} {}",
                    net.name(),
                    oracle.cycles(),
                    fixed.cycles()
                );
            }
        }
    }

    #[test]
    fn algorithm_2_is_near_oracle() {
        // The paper's heuristic should capture nearly all of the win an
        // exhaustive per-layer search can find.
        let r = runner();
        for net in zoo::all() {
            let oracle = r.run_network(&net, Policy::Oracle).unwrap();
            let adpa2 = r
                .run_network(
                    &net,
                    Policy::Adaptive {
                        improved_inter: true,
                    },
                )
                .unwrap();
            let gap = adpa2.cycles() as f64 / oracle.cycles() as f64;
            assert!(gap < 1.10, "{}: gap {gap}", net.name());
        }
    }

    #[test]
    fn batching_amortizes_fc_weight_streams() {
        use cbrain_model::zoo;
        let net = zoo::alexnet();
        let mk = |batch| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    workload: Workload::FullNetwork,
                    batch,
                    ..RunOptions::default()
                },
            )
        };
        let one = mk(1).run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        let eight = mk(8).run_network(&net, Policy::PAPER_ARMS[4]).unwrap();
        // FC layers dominate AlexNet's DRAM traffic at batch 1; batching
        // divides that stream, so per-image traffic and cycles both drop.
        assert!(eight.dram_bytes_per_image() < 0.4 * one.dram_bytes_per_image());
        assert!(eight.cycles_per_image() < one.cycles_per_image());
        // Compute (MACs) still scales exactly with the batch.
        assert_eq!(eight.totals.mac_ops, 8 * one.totals.mac_ops);
    }

    #[test]
    fn conv_only_batching_is_nearly_linear() {
        use cbrain_model::zoo;
        let net = zoo::vgg16();
        let mk = |batch| {
            Runner::with_options(
                AcceleratorConfig::paper_16_16(),
                RunOptions {
                    batch,
                    ..RunOptions::default()
                },
            )
        };
        let one = mk(1).run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let four = mk(4).run_network(&net, Policy::PAPER_ARMS[0]).unwrap();
        let ratio = four.cycles() as f64 / one.cycles() as f64;
        assert!((3.8..=4.05).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn all_networks_run_all_arms() {
        let r = runner();
        for net in zoo::all() {
            let reports = r.run_paper_arms(&net).unwrap();
            assert_eq!(reports.len(), 5, "{}", net.name());
            for rep in &reports {
                assert!(rep.cycles() > 0, "{} {}", net.name(), rep.policy);
                assert!(rep.energy.total_pj() > 0.0);
            }
        }
    }
}
