//! # cbrain
//!
//! Library reproduction of **C-Brain: A Deep Learning Accelerator that
//! Tames the Diversity of CNNs through Adaptive Data-level Parallelization**
//! (Song et al., DAC 2016).
//!
//! The paper's contribution is a CNN accelerator that *switches mapping
//! schemes per layer*: inter-kernel vectorization for deep top layers,
//! kernel-partitioning (Eq. 2) for the critical bottom layers whose `Din`
//! is smaller than the PE width, true sliding windows when `k == s`, and an
//! improved inter-kernel traversal (Sec. 4.2.2) that trades cheap
//! add-and-store operations for expensive operand reloads.
//!
//! This crate is the user-facing API over the substrate crates:
//!
//! * [`cbrain_model`] — networks, reference math;
//! * [`cbrain_sim`] — the cycle/energy machine;
//! * [`cbrain_compiler`] — per-scheme code generation.
//!
//! # Quick start
//!
//! ```
//! use cbrain::{Policy, Runner};
//! use cbrain_model::zoo;
//! use cbrain_sim::AcceleratorConfig;
//!
//! let runner = Runner::new(AcceleratorConfig::paper_16_16());
//! let net = zoo::alexnet();
//!
//! // Run the paper's five arms: inter, intra, partition, adpa-1, adpa-2.
//! let reports = runner.run_paper_arms(&net)?;
//! let inter = &reports[0];
//! let adpa2 = &reports[4];
//!
//! // The adaptive mapper wins on cycles...
//! assert!(adpa2.speedup_over(inter) > 1.0);
//! // ...and slashes on-chip buffer traffic.
//! assert!(adpa2.totals.buffer_access_bits() < inter.totals.buffer_access_bits());
//! # Ok::<(), cbrain::RunError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod cache;
pub mod config;
mod error;
pub mod forward;
pub mod functional;
pub mod journal;
pub mod partition_math;
pub mod persist;
pub mod pool;
pub mod quantized;
pub mod report;
mod runner;
pub mod schedule;

pub use adaptive::{select_scheme, ParsePolicyError, Policy};
pub use cache::{CachedLayer, CompiledLayerCache, LayerKey};
pub use config::EnvConfig;
pub use error::RunError;
pub use journal::Journal;
pub use pool::{available_jobs, parallel_map, try_parallel_map};
pub use runner::{
    compile_cache_entry, CompileBackend, LayerReport, NetworkReport, ParseWorkloadError,
    RunOptions, Runner, Workload,
};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use cbrain_compiler as compiler;
pub use cbrain_compiler::Scheme;
pub use cbrain_model as model;
pub use cbrain_sim as sim;
pub use cbrain_telemetry as telemetry;
