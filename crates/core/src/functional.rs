//! Data-accurate executions of each mapping scheme.
//!
//! The performance simulator never touches values; this module proves the
//! *mathematical* claims: kernel partitioning (Algorithm 1), data
//! unrolling, and the improved inter-kernel partial-sum ordering all
//! compute exactly the same convolution as the reference sliding window.
//! The PE-level variant additionally pushes values through the segmented
//! adder-tree datapath the cycle model assumes.

use crate::partition_math::partition;
use cbrain_model::{reference, simd, ConvParams, ConvWeights, ModelError, Tensor3};
use cbrain_sim::pe::PeArray;
use cbrain_sim::PeConfig;

/// The output columns `ox` of a unit-stride row pass whose input tap
/// `ox + kx - pad` lands inside an unpadded row of width `in_w`, together
/// with the input column the first tap reads: `(lo, hi, x0)` with the
/// span possibly empty (`lo >= hi`).
#[inline]
fn row_span(kx: usize, pad: isize, in_w: usize, out_w: usize) -> (usize, usize, usize) {
    let lo = (pad - kx as isize).max(0) as usize;
    let hi = (in_w as isize + pad - kx as isize).clamp(0, out_w as isize) as usize;
    let x0 = if lo < hi {
        (lo as isize + kx as isize - pad) as usize
    } else {
        0
    };
    (lo, hi, x0)
}

/// Kernel-partitioned convolution (Algorithm 1): the `k x k` kernel is
/// split into `g x g` sub-kernels of side `ks = s`; each pass produces a
/// partial output map (`r_{i/G}` in Fig. 5d) which is accumulated into the
/// final result.
///
/// # Errors
///
/// Propagates shape/parameter errors.
///
/// # Examples
///
/// ```
/// use cbrain::functional::partition_forward;
/// use cbrain_model::{reference, ConvParams, ConvWeights, Tensor3, TensorShape};
///
/// let params = ConvParams::new(3, 4, 11, 4, 0);
/// let input = Tensor3::random(TensorShape::new(3, 43, 43), 7);
/// let weights = ConvWeights::random(&params, 8);
/// let ours = partition_forward(&input, &weights, None, &params)?;
/// let truth = reference::conv_forward(&input, &weights, None, &params)?;
/// assert!(ours.max_abs_diff(&truth) < 1e-4);
/// # Ok::<(), cbrain_model::ModelError>(())
/// ```
pub fn partition_forward(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
) -> Result<Tensor3, ModelError> {
    params.validate("<partition>")?;
    let out_shape = params.output_shape(input.shape())?;
    let (g, ks) = partition(params.kernel, params.stride);
    let mut out = Tensor3::zeros(out_shape);

    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let pad = params.pad as isize;

    // Seed with the bias, then add the g*g partial maps.
    if let Some(b) = bias {
        for (o, &bv) in b.iter().enumerate().take(out_shape.maps) {
            for oy in 0..out_shape.height {
                out.row_mut(o, oy).fill(bv);
            }
        }
    }

    if params.stride == 1 {
        // Unit stride means ks == 1: every pass slides a single weight.
        // Accumulate each output row's pass partial with row-wise axpy,
        // then add-and-store it — the same per-pixel term order and the
        // same one-add-per-pass structure as the loop below (Algorithm 1
        // line 8), vectorized across independent output pixels.
        let in_shape = input.shape();
        let mut acc_row = vec![0.0f32; out_shape.width];
        for gy in 0..g {
            for gx in 0..g {
                if gy >= params.kernel || gx >= params.kernel {
                    continue;
                }
                let (lo, hi, x0) = row_span(gx, pad, in_shape.width, out_shape.width);
                for o in 0..params.out_maps {
                    let group = o / out_per_group;
                    let in_base = group * in_per_group;
                    for oy in 0..out_shape.height {
                        let y = oy as isize - pad + gy as isize;
                        acc_row.fill(0.0);
                        if y >= 0 && (y as usize) < in_shape.height && lo < hi {
                            for i in 0..in_per_group {
                                let in_row = input.row(in_base + i, y as usize);
                                simd::axpy(
                                    &mut acc_row[lo..hi],
                                    weights.at(o, i, gy, gx),
                                    &in_row[x0..x0 + (hi - lo)],
                                );
                            }
                        }
                        simd::add_assign(out.row_mut(o, oy), &acc_row);
                    }
                }
            }
        }
        return Ok(out);
    }

    for gy in 0..g {
        for gx in 0..g {
            // One pass: slide the (gy, gx) sub-kernel at stride s. Its
            // windows are non-overlapping because ks == s.
            for o in 0..params.out_maps {
                let group = o / out_per_group;
                let in_base = group * in_per_group;
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let mut acc = 0.0f32;
                        for i in 0..in_per_group {
                            for ky in 0..ks {
                                for kx in 0..ks {
                                    let wy = gy * ks + ky;
                                    let wx = gx * ks + kx;
                                    // Zero-padded weights beyond k (Fig. 5c).
                                    if wy >= params.kernel || wx >= params.kernel {
                                        continue;
                                    }
                                    let y = (oy * params.stride) as isize - pad + wy as isize;
                                    let x = (ox * params.stride) as isize - pad + wx as isize;
                                    acc += input.at_padded(in_base + i, y, x)
                                        * weights.at(o, i, wy, wx);
                                }
                            }
                        }
                        // Algorithm 1 line 8: reload the partial pixel, add,
                        // store.
                        *out.at_mut(o, oy, ox) += acc;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Unrolled (im2col) convolution: the intra-kernel scheme's data layout.
/// Windows are duplicated into contiguous runs (Eq. 1's footprint cost),
/// then each output pixel is one dot product.
///
/// # Errors
///
/// Propagates shape/parameter errors. Grouped convolutions are supported.
pub fn unrolled_forward(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
) -> Result<Tensor3, ModelError> {
    params.validate("<unrolled>")?;
    let out_shape = params.output_shape(input.shape())?;
    let (buf, wy, wx) = reference::unroll_windows(input, params.kernel, params.stride, params.pad)?;
    debug_assert_eq!((wy, wx), (out_shape.height, out_shape.width));

    let k2 = params.kernel * params.kernel;
    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let windows_per_map = wy * wx;

    let mut out = Tensor3::zeros(out_shape);
    for o in 0..params.out_maps {
        let group = o / out_per_group;
        let in_base = group * in_per_group;
        for w in 0..windows_per_map {
            let mut acc = bias.map_or(0.0, |b| b[o]);
            for i in 0..in_per_group {
                // The unrolled window run and the kernel run share the
                // same (ky, kx) row-major layout: one dot product each.
                let run = &buf[((in_base + i) * windows_per_map + w) * k2..][..k2];
                acc += simd::dot(run, weights.kernel_run(o, i));
            }
            *out.at_mut(o, w / wx, w % wx) = acc;
        }
    }
    Ok(out)
}

/// Plain inter-kernel convolution with the input-map dimension walked in
/// `tin`-wide blocks: each block's window dot-product accumulates in a PE
/// register, then add-and-stores into the output buffer once per block —
/// the accumulation order of the inter-kernel hardware mapping.
///
/// The reference sliding window accumulates the whole window in one
/// running sum; this executor deliberately reorders it the way the array
/// does, so the conformance suite compares two genuinely different
/// summation orders.
///
/// # Errors
///
/// Propagates shape/parameter errors. Grouped convolutions are supported.
///
/// # Panics
///
/// Panics if `tin` is zero.
pub fn inter_forward(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
    tin: usize,
) -> Result<Tensor3, ModelError> {
    assert!(tin > 0, "tin must be non-zero");
    params.validate("<inter>")?;
    let out_shape = params.output_shape(input.shape())?;
    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let pad = params.pad as isize;

    let mut out = Tensor3::zeros(out_shape);
    if let Some(b) = bias {
        for (o, &bv) in b.iter().enumerate().take(out_shape.maps) {
            for oy in 0..out_shape.height {
                out.row_mut(o, oy).fill(bv);
            }
        }
    }

    if params.stride == 1 {
        // Row-wise variant: each Din block's partial accumulates in a row
        // of "PE registers" via axpy over shifted input rows (term order
        // per pixel unchanged: i -> ky -> kx), then one add-and-store per
        // block, exactly like the per-pixel loop below.
        let in_shape = input.shape();
        let mut acc_row = vec![0.0f32; out_shape.width];
        for o in 0..params.out_maps {
            let group = o / out_per_group;
            let in_base = group * in_per_group;
            for oy in 0..out_shape.height {
                for i_block in (0..in_per_group).step_by(tin) {
                    acc_row.fill(0.0);
                    for i in i_block..(i_block + tin).min(in_per_group) {
                        for ky in 0..params.kernel {
                            let y = oy as isize - pad + ky as isize;
                            if y < 0 || y as usize >= in_shape.height {
                                continue;
                            }
                            let in_row = input.row(in_base + i, y as usize);
                            for kx in 0..params.kernel {
                                let (lo, hi, x0) =
                                    row_span(kx, pad, in_shape.width, out_shape.width);
                                if lo < hi {
                                    simd::axpy(
                                        &mut acc_row[lo..hi],
                                        weights.at(o, i, ky, kx),
                                        &in_row[x0..x0 + (hi - lo)],
                                    );
                                }
                            }
                        }
                    }
                    // One add-and-store per Din block.
                    simd::add_assign(out.row_mut(o, oy), &acc_row);
                }
            }
        }
        return Ok(out);
    }

    for o in 0..params.out_maps {
        let group = o / out_per_group;
        let in_base = group * in_per_group;
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                for i_block in (0..in_per_group).step_by(tin) {
                    let mut acc = 0.0f32; // the PE register
                    for i in i_block..(i_block + tin).min(in_per_group) {
                        for ky in 0..params.kernel {
                            for kx in 0..params.kernel {
                                let y = (oy * params.stride) as isize - pad + ky as isize;
                                let x = (ox * params.stride) as isize - pad + kx as isize;
                                acc +=
                                    input.at_padded(in_base + i, y, x) * weights.at(o, i, ky, kx);
                            }
                        }
                    }
                    // One add-and-store per Din block.
                    *out.at_mut(o, oy, ox) += acc;
                }
            }
        }
    }
    Ok(out)
}

/// Improved inter-kernel convolution (Sec. 4.2.2): the kernel-position loop
/// is outermost, so each output element is built from `k*k` partial sums
/// accumulated in the output buffer ("add-and-store") instead of in the PE
/// register.
///
/// # Errors
///
/// Propagates shape/parameter errors.
pub fn improved_inter_forward(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
) -> Result<Tensor3, ModelError> {
    params.validate("<improved-inter>")?;
    let out_shape = params.output_shape(input.shape())?;
    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let pad = params.pad as isize;

    // The "output buffer" of partial sums.
    let mut out = Tensor3::zeros(out_shape);
    if let Some(b) = bias {
        for (o, &bv) in b.iter().enumerate().take(out_shape.maps) {
            for oy in 0..out_shape.height {
                out.row_mut(o, oy).fill(bv);
            }
        }
    }

    if params.stride == 1 {
        // Row-wise variant: the (ky, kx) pass's sum-over-Din partial for a
        // whole output row accumulates via axpy (per-pixel term order
        // unchanged), then one add-and-store into the output buffer —
        // performed even for fully padded rows, like the loop below.
        let in_shape = input.shape();
        let mut partial_row = vec![0.0f32; out_shape.width];
        for ky in 0..params.kernel {
            for kx in 0..params.kernel {
                let (lo, hi, x0) = row_span(kx, pad, in_shape.width, out_shape.width);
                for o in 0..params.out_maps {
                    let group = o / out_per_group;
                    let in_base = group * in_per_group;
                    for oy in 0..out_shape.height {
                        let y = oy as isize - pad + ky as isize;
                        partial_row.fill(0.0);
                        if y >= 0 && (y as usize) < in_shape.height && lo < hi {
                            for i in 0..in_per_group {
                                let in_row = input.row(in_base + i, y as usize);
                                simd::axpy(
                                    &mut partial_row[lo..hi],
                                    weights.at(o, i, ky, kx),
                                    &in_row[x0..x0 + (hi - lo)],
                                );
                            }
                        }
                        // add-and-store
                        simd::add_assign(out.row_mut(o, oy), &partial_row);
                    }
                }
            }
        }
        return Ok(out);
    }

    // Weights for one (ky, kx) are held while every pixel of every output
    // map is visited — the traversal that slashes weight reloads.
    for ky in 0..params.kernel {
        for kx in 0..params.kernel {
            for o in 0..params.out_maps {
                let group = o / out_per_group;
                let in_base = group * in_per_group;
                for oy in 0..out_shape.height {
                    for ox in 0..out_shape.width {
                        let y = (oy * params.stride) as isize - pad + ky as isize;
                        let x = (ox * params.stride) as isize - pad + kx as isize;
                        let mut partial = 0.0f32;
                        for i in 0..in_per_group {
                            partial +=
                                input.at_padded(in_base + i, y, x) * weights.at(o, i, ky, kx);
                        }
                        // add-and-store
                        *out.at_mut(o, oy, ox) += partial;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Kernel-partitioned convolution executed issue-by-issue on the
/// functional PE array, including the adder-tree segmentation that packs
/// several `ks x ks` sub-windows into one issue (Sec. 4.2.1's mapping).
///
/// Supports ungrouped layers whose sub-window size does not exceed `Tin`.
///
/// # Errors
///
/// Propagates shape/parameter errors.
///
/// # Panics
///
/// Panics if `params.groups != 1` or `s * s > pe.tin` (not a meaningful
/// hardware mapping — use [`partition_forward`] for the general check).
pub fn partition_forward_on_pe(
    input: &Tensor3,
    weights: &ConvWeights,
    params: &ConvParams,
    pe: PeConfig,
) -> Result<Tensor3, ModelError> {
    assert_eq!(params.groups, 1, "PE-level check supports ungrouped only");
    let (g, ks) = partition(params.kernel, params.stride);
    let window = ks * ks;
    assert!(window <= pe.tin, "sub-window must fit the lane group");
    params.validate("<partition-pe>")?;
    let out_shape = params.output_shape(input.shape())?;
    let array = PeArray::new(pe);
    let pack = pe.tin / window;
    let pad = params.pad as isize;

    let mut out = Tensor3::zeros(out_shape);
    let windows_total = out_shape.height * out_shape.width;

    for gy in 0..g {
        for gx in 0..g {
            for i in 0..params.in_maps {
                // Sweep output maps in Tout-wide blocks with weights held.
                for o_base in (0..params.out_maps).step_by(pe.tout) {
                    let o_count = pe.tout.min(params.out_maps - o_base);
                    // Weight vector per output lane: the sub-kernel repeated
                    // per packed window.
                    let lane_weights: Vec<Vec<f64>> = (0..o_count)
                        .map(|oo| {
                            let mut w = Vec::with_capacity(pack * window);
                            for _ in 0..pack {
                                for ky in 0..ks {
                                    for kx in 0..ks {
                                        let (wy, wx) = (gy * ks + ky, gx * ks + kx);
                                        let v = if wy < params.kernel && wx < params.kernel {
                                            weights.at(o_base + oo, i, wy, wx) as f64
                                        } else {
                                            0.0
                                        };
                                        w.push(v);
                                    }
                                }
                            }
                            w
                        })
                        .collect();

                    for w_base in (0..windows_total).step_by(pack) {
                        let batch = pack.min(windows_total - w_base);
                        // Gather the packed sub-windows (contiguous in the
                        // real buffer; gathered here from the dense tensor).
                        let mut data = Vec::with_capacity(batch * window);
                        for b in 0..batch {
                            let w_idx = w_base + b;
                            let (oy, ox) = (w_idx / out_shape.width, w_idx % out_shape.width);
                            for ky in 0..ks {
                                for kx in 0..ks {
                                    let y = (oy * params.stride) as isize - pad
                                        + (gy * ks + ky) as isize;
                                    let x = (ox * params.stride) as isize - pad
                                        + (gx * ks + kx) as isize;
                                    data.push(input.at_padded(i, y, x) as f64);
                                }
                            }
                        }
                        let lanes: Vec<&[f64]> = lane_weights[..o_count]
                            .iter()
                            .map(|w| &w[..data.len()])
                            .collect();
                        let psums = array
                            .issue(&data, &lanes, window)
                            .expect("issue shapes are consistent by construction");
                        for (oo, lane) in psums.iter().enumerate() {
                            for (b, p) in lane.iter().enumerate() {
                                let w_idx = w_base + b;
                                let (oy, ox) = (w_idx / out_shape.width, w_idx % out_shape.width);
                                // add-and-store into the output buffer.
                                *out.at_mut(o_base + oo, oy, ox) += *p as f32;
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::TensorShape;

    const TOL: f32 = 2e-3;

    fn check_against_reference(
        params: ConvParams,
        input_shape: TensorShape,
        f: impl Fn(&Tensor3, &ConvWeights, Option<&[f32]>, &ConvParams) -> Result<Tensor3, ModelError>,
    ) {
        let input = Tensor3::random(input_shape, 11);
        let weights = ConvWeights::random(&params, 23);
        let bias: Vec<f32> = (0..params.out_maps).map(|i| i as f32 * 0.1 - 1.0).collect();
        let truth = reference::conv_forward(&input, &weights, Some(&bias), &params).unwrap();
        let ours = f(&input, &weights, Some(&bias), &params).unwrap();
        let diff = ours.max_abs_diff(&truth);
        assert!(diff < TOL, "diff={diff}");
    }

    #[test]
    fn partition_matches_reference_alexnet_c1_shape() {
        // Scaled-down AlexNet conv1: k=11, s=4.
        check_against_reference(
            ConvParams::new(3, 8, 11, 4, 0),
            TensorShape::new(3, 47, 47),
            partition_forward,
        );
    }

    #[test]
    fn partition_matches_reference_with_padding() {
        check_against_reference(
            ConvParams::new(4, 6, 5, 2, 2),
            TensorShape::new(4, 19, 19),
            partition_forward,
        );
    }

    #[test]
    fn partition_matches_reference_stride_1() {
        // VGG-style: g=3, ks=1 single-weight sub-kernels.
        check_against_reference(
            ConvParams::new(3, 4, 3, 1, 1),
            TensorShape::new(3, 12, 12),
            partition_forward,
        );
    }

    #[test]
    fn partition_matches_reference_grouped() {
        check_against_reference(
            ConvParams::grouped(6, 8, 5, 2, 1, 2),
            TensorShape::new(6, 17, 17),
            partition_forward,
        );
    }

    #[test]
    fn partition_matches_when_k_equals_s() {
        // Degenerate g=1: plain sliding window.
        check_against_reference(
            ConvParams::new(2, 3, 4, 4, 0),
            TensorShape::new(2, 16, 16),
            partition_forward,
        );
    }

    #[test]
    fn unrolled_matches_reference() {
        check_against_reference(
            ConvParams::new(3, 5, 5, 2, 1),
            TensorShape::new(3, 15, 15),
            unrolled_forward,
        );
    }

    #[test]
    fn unrolled_matches_reference_grouped() {
        check_against_reference(
            ConvParams::grouped(4, 4, 3, 1, 1, 2),
            TensorShape::new(4, 9, 9),
            unrolled_forward,
        );
    }

    #[test]
    fn inter_blocked_matches_reference() {
        check_against_reference(
            ConvParams::new(40, 6, 3, 1, 1),
            TensorShape::new(40, 9, 9),
            |i, w, b, p| inter_forward(i, w, b, p, 16),
        );
    }

    #[test]
    fn inter_blocked_matches_reference_grouped_depthwise() {
        check_against_reference(
            ConvParams::depthwise(6, 3, 2, 1),
            TensorShape::new(6, 11, 11),
            |i, w, b, p| inter_forward(i, w, b, p, 16),
        );
    }

    #[test]
    fn improved_inter_matches_reference() {
        check_against_reference(
            ConvParams::new(5, 7, 3, 1, 1),
            TensorShape::new(5, 13, 13),
            improved_inter_forward,
        );
    }

    #[test]
    fn improved_inter_matches_reference_strided() {
        check_against_reference(
            ConvParams::grouped(6, 4, 5, 2, 0, 2),
            TensorShape::new(6, 21, 21),
            improved_inter_forward,
        );
    }

    #[test]
    fn pe_level_partition_matches_reference() {
        // k=11, s=4 -> ks=4, window 16 = Tin: exactly one window per issue.
        let params = ConvParams::new(3, 8, 11, 4, 0);
        let input = Tensor3::random(TensorShape::new(3, 43, 43), 3);
        let weights = ConvWeights::random(&params, 5);
        let truth = reference::conv_forward(&input, &weights, None, &params).unwrap();
        let ours =
            partition_forward_on_pe(&input, &weights, &params, PeConfig::new(16, 16)).unwrap();
        let diff = ours.max_abs_diff(&truth);
        assert!(diff < TOL, "diff={diff}");
    }

    #[test]
    fn pe_level_partition_packs_multiple_windows() {
        // k=3, s=1 -> ks=1, window 1: 16 windows pack per issue.
        let params = ConvParams::new(2, 5, 3, 1, 1);
        let input = Tensor3::random(TensorShape::new(2, 10, 10), 13);
        let weights = ConvWeights::random(&params, 17);
        let truth = reference::conv_forward(&input, &weights, None, &params).unwrap();
        let ours =
            partition_forward_on_pe(&input, &weights, &params, PeConfig::new(16, 4)).unwrap();
        let diff = ours.max_abs_diff(&truth);
        assert!(diff < TOL, "diff={diff}");
    }

    #[test]
    fn pe_level_partition_handles_remainder_batch() {
        // windows_total not a multiple of the pack width.
        let params = ConvParams::new(1, 2, 2, 2, 0);
        let input = Tensor3::random(TensorShape::new(1, 10, 10), 29);
        let weights = ConvWeights::random(&params, 31);
        let truth = reference::conv_forward(&input, &weights, None, &params).unwrap();
        // window = 4, Tin = 12 -> pack 3; 25 windows = 8 batches + 1 rem.
        let ours =
            partition_forward_on_pe(&input, &weights, &params, PeConfig::new(12, 2)).unwrap();
        assert!(ours.max_abs_diff(&truth) < TOL);
    }
}
