//! Plain-text report formatting for experiment harnesses.

use crate::runner::NetworkReport;
use std::fmt::Write as _;

/// Formats a cycle count with thousands separators (`1_234_567`).
pub fn format_cycles(cycles: u64) -> String {
    let digits = cycles.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Renders a fixed-width table: a header row plus data rows.
///
/// # Examples
///
/// ```
/// use cbrain::report::render_table;
///
/// let t = render_table(
///     &["net", "cycles"],
///     &[vec!["alexnet".into(), "123".into()]],
/// );
/// assert!(t.contains("alexnet"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: Vec<&str>, out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.truncate(out.trim_end().len());
        out.push('\n');
    };
    line(header.to_vec(), &mut out);
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(*w) + "  ")
        .collect::<String>();
    out.push_str(rule.trim_end());
    out.push('\n');
    for row in rows {
        line(row.iter().map(String::as_str).collect(), &mut out);
    }
    out
}

/// Renders a log-scale ASCII bar chart — the textual twin of the paper's
/// Figs. 7/8/10. Each row is `label |#####  value`; bar lengths are
/// proportional to `log10(value / min)`.
///
/// # Examples
///
/// ```
/// use cbrain::report::log_bars;
///
/// let chart = log_bars(&[("inter", 5_101_705), ("adpa-2", 3_404_743)], 40);
/// assert!(chart.contains("inter"));
/// assert!(chart.contains('#'));
/// ```
pub fn log_bars(rows: &[(&str, u64)], width: usize) -> String {
    let mut out = String::new();
    let min = rows
        .iter()
        .map(|(_, v)| *v)
        .filter(|v| *v > 0)
        .min()
        .unwrap_or(1) as f64;
    let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(1) as f64;
    let span = (max / min).log10().max(1e-9);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let bars = if *value == 0 {
            0
        } else {
            // Every non-zero bar gets at least one mark; the rest scale
            // with log distance above the minimum.
            1 + ((*value as f64 / min).log10() / span * (width - 1) as f64).round() as usize
        };
        let _ = writeln!(
            out,
            "{label:<label_w$} |{} {value}",
            "#".repeat(bars.min(width))
        );
    }
    out
}

/// One-line summary of a network run.
pub fn summarize(report: &NetworkReport) -> String {
    format!(
        "{:<10} {:<10} {:>14} cycles  {:>8.3} ms  util {:>5.1}%  buffer {:>6.2e} bits  dram {:>6.2e} B  cache {}h/{}m",
        report.network,
        report.policy.label(),
        format_cycles(report.cycles()),
        report.ms(),
        report.totals.pe_utilization() * 100.0,
        report.totals.buffer_access_bits() as f64,
        report.totals.dram_bytes() as f64,
        report.cache_hits,
        report.cache_misses,
    )
}

/// The full plain-text report for one network run — the body `cbrain
/// run` prints and the serving daemon's client reproduces. Keeping the
/// rendering here is what makes the two byte-identical: both sides feed
/// a [`NetworkReport`] through this one function.
pub fn render_run_report(report: &NetworkReport, breakdown: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", report.config);
    out.push_str(&summarize(report));
    out.push('\n');
    if report.batch > 1 {
        let _ = writeln!(
            out,
            "batch {}: {:.3e} cycles/image, {:.3e} DRAM B/image",
            report.batch,
            report.cycles_per_image(),
            report.dram_bytes_per_image(),
        );
    }
    let _ = writeln!(
        out,
        "ideal bound {} cycles | PE {:.3} mJ, buffers {:.3} mJ, DRAM {:.3} mJ",
        format_cycles(report.ideal_cycles()),
        report.energy.pe_pj * 1e-9,
        report.energy.buffer_pj * 1e-9,
        report.energy.dram_pj * 1e-9,
    );
    if breakdown {
        out.push('\n');
        out.push_str(&layer_breakdown(report));
    }
    out
}

/// Per-layer breakdown of a run.
pub fn layer_breakdown(report: &NetworkReport) -> String {
    let rows: Vec<Vec<String>> = report
        .layers
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                l.scheme.map_or("-".into(), |s| s.to_string()),
                format_cycles(l.stats.cycles),
                format_cycles(l.ideal_cycles),
                format!("{:.1}%", l.stats.pe_utilization() * 100.0),
            ]
        })
        .collect();
    render_table(&["layer", "scheme", "cycles", "ideal", "util"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::Policy;
    use crate::runner::Runner;
    use cbrain_model::zoo;
    use cbrain_sim::AcceleratorConfig;

    #[test]
    fn cycle_formatting() {
        assert_eq!(format_cycles(0), "0");
        assert_eq!(format_cycles(999), "999");
        assert_eq!(format_cycles(1_000), "1_000");
        assert_eq!(format_cycles(1_234_567), "1_234_567");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("------"));
    }

    #[test]
    fn log_bars_scale_and_order() {
        let chart = log_bars(&[("a", 100), ("b", 10_000), ("c", 0)], 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |l: &str| l.matches('#').count();
        assert!(hashes(lines[1]) > hashes(lines[0]));
        assert_eq!(hashes(lines[2]), 0);
        // The longest bar never exceeds the width budget.
        assert!(hashes(lines[1]) <= 20);
    }

    #[test]
    fn log_bars_equal_values() {
        let chart = log_bars(&[("x", 7), ("y", 7)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), lines[1].matches('#').count());
    }

    #[test]
    fn summary_and_breakdown_render() {
        let runner = Runner::new(AcceleratorConfig::paper_16_16());
        let report = runner
            .run_network(&zoo::alexnet(), Policy::PAPER_ARMS[4])
            .unwrap();
        let s = summarize(&report);
        assert!(s.contains("alexnet"));
        assert!(s.contains("adpa-2"));
        let b = layer_breakdown(&report);
        assert!(b.contains("conv1"));
        assert!(b.contains("partition"));
    }
}
