//! Memoization of compiled layers across runs.
//!
//! Compiling a layer (tiling, Eq. 1/Eq. 2 math, macro-op emission) and
//! simulating the resulting program are pure functions of the layer's
//! geometry, the chosen [`Scheme`], the hardware configuration, the
//! machine execution knobs and the batch size. The experiment harness
//! replays the same layers hundreds of times — every VGG block repeats
//! one conv shape, every paper arm revisits the same network, and the
//! `Oracle` policy compiles all four schemes per layer — so the
//! [`CompiledLayerCache`] keys compiled programs by exactly those inputs
//! and shares them.
//!
//! The cache is thread-safe: [`Runner`](crate::Runner) clones share one
//! cache through an [`Arc`], and the parallel compile fan-out inserts
//! from worker threads. Hit/miss accounting for a *run* is computed by
//! the runner in a deterministic serial pre-pass (so the counters on
//! [`NetworkReport`](crate::NetworkReport) do not depend on thread
//! scheduling); the cache's own global counters aggregate every lookup
//! for whole-process summaries.
//!
//! # Examples
//!
//! ```
//! use cbrain::cache::{CompiledLayerCache, LayerKey};
//! use cbrain::{RunOptions, Scheme};
//! use cbrain_model::zoo;
//! use cbrain_sim::AcceleratorConfig;
//!
//! let cache = CompiledLayerCache::new();
//! let net = zoo::vgg16();
//! let opts = RunOptions::default();
//! let cfg = AcceleratorConfig::paper_16_16();
//!
//! // conv3_2 and conv3_3 have identical geometry: one cache entry.
//! let a = LayerKey::new(net.layer("conv3_2").unwrap(), Scheme::Inter, &cfg, &opts);
//! let b = LayerKey::new(net.layer("conv3_3").unwrap(), Scheme::Inter, &cfg, &opts);
//! assert_eq!(a, b);
//! assert!(!cache.contains(&a));
//! ```

use crate::runner::RunOptions;
use cbrain_compiler::{CompiledLayer, Scheme};
use cbrain_model::{Layer, LayerKind, TensorShape};
use cbrain_sim::{AcceleratorConfig, MachineOptions, Stats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Everything a compiled-and-simulated layer depends on.
///
/// Deliberately excludes the layer *name*: two layers with the same
/// geometry compile to the same program and simulate to the same stats,
/// so VGG's repeated blocks share entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerKey {
    /// Layer operation and parameters.
    pub kind: LayerKind,
    /// Input tensor shape.
    pub input: TensorShape,
    /// Mapping scheme (for non-conv layers the compiler ignores it; the
    /// runner normalizes it to [`Scheme::Inter`]).
    pub scheme: Scheme,
    /// Hardware configuration.
    pub cfg: AcceleratorConfig,
    /// Machine execution knobs (they change the simulated stats).
    pub machine: MachineOptions,
    /// Batch size (it changes the emitted program).
    pub batch: usize,
}

impl LayerKey {
    /// Key for compiling `layer` under `scheme` with the given hardware
    /// and run options.
    pub fn new(layer: &Layer, scheme: Scheme, cfg: &AcceleratorConfig, opts: &RunOptions) -> Self {
        // Non-conv layers have a fixed mapping; normalizing the scheme
        // makes all four Oracle probes of a pool layer collapse to one key.
        let scheme = if layer.as_conv().is_some() {
            scheme
        } else {
            Scheme::Inter
        };
        Self {
            kind: layer.kind,
            input: layer.input,
            scheme,
            cfg: *cfg,
            machine: opts.machine,
            batch: opts.batch,
        }
    }
}

/// A compiled layer together with its simulated statistics.
#[derive(Debug, Clone)]
pub struct CachedLayer {
    /// Compiler output (program, layouts, scheme actually used).
    pub compiled: CompiledLayer,
    /// Machine statistics for one execution of the program.
    pub stats: Stats,
}

/// A cache entry plus the logical clock of its last lookup, so
/// [`CompiledLayerCache::evict_lru`] can drop the coldest entries first.
#[derive(Debug)]
struct Slot {
    value: Arc<CachedLayer>,
    last_used: AtomicU64,
}

/// Thread-safe map from [`LayerKey`] to compiled+simulated layers.
///
/// # Examples
///
/// ```
/// use cbrain::{Policy, Runner};
/// use cbrain_model::zoo;
/// use cbrain_sim::AcceleratorConfig;
///
/// let runner = Runner::new(AcceleratorConfig::paper_16_16());
/// let report = runner.run_network(&zoo::vgg16(), Policy::PAPER_ARMS[0])?;
/// // VGG repeats conv shapes, so even a cold cache scores hits.
/// assert!(report.cache_hits > 0);
/// // A second identical run is answered entirely from the cache.
/// let again = runner.run_network(&zoo::vgg16(), Policy::PAPER_ARMS[0])?;
/// assert_eq!(again.cache_misses, 0);
/// assert_eq!(again.cycles(), report.cycles());
/// # Ok::<(), cbrain::RunError>(())
/// ```
#[derive(Debug, Default)]
pub struct CompiledLayerCache {
    entries: RwLock<HashMap<LayerKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Logical clock stamping every lookup/insert; drives LRU eviction.
    tick: AtomicU64,
}

impl CompiledLayerCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache behind an [`Arc`], ready to share between runners.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Whether the key is already cached (does not touch the counters
    /// or the entry's recency).
    pub fn contains(&self, key: &LayerKey) -> bool {
        self.entries.read().expect("cache lock").contains_key(key)
    }

    /// Stamps a slot with the next logical-clock tick. Recency updates
    /// happen under the read lock: `last_used` is atomic, so concurrent
    /// readers race only over which recent tick wins — either keeps the
    /// entry hot.
    fn touch(&self, slot: &Slot) -> Arc<CachedLayer> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
        Arc::clone(&slot.value)
    }

    /// Looks up a key without touching the counters (the entry's LRU
    /// recency is still refreshed). The runner uses this for its merge
    /// pass, whose hits were already accounted by the serial pre-pass
    /// (see [`crate::Runner::run_network`]).
    pub fn peek(&self, key: &LayerKey) -> Option<Arc<CachedLayer>> {
        let map = self.entries.read().expect("cache lock");
        map.get(key).map(|slot| self.touch(slot))
    }

    /// Adds externally-accounted lookups to the global counters (the
    /// runner computes a run's hits/misses deterministically and reports
    /// them here in one shot).
    pub fn record(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Looks up a key, counting a global hit or miss.
    pub fn get(&self, key: &LayerKey) -> Option<Arc<CachedLayer>> {
        let found = {
            let map = self.entries.read().expect("cache lock");
            map.get(key).map(|slot| self.touch(slot))
        };
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an entry computed elsewhere. Returns the entry that ends up
    /// in the cache (the existing one if another thread got there first,
    /// so concurrent same-key compiles converge on one allocation).
    pub fn insert(&self, key: LayerKey, value: CachedLayer) -> Arc<CachedLayer> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.entries.write().expect("cache lock");
        let slot = map.entry(key).or_insert_with(|| Slot {
            value: Arc::new(value),
            last_used: AtomicU64::new(now),
        });
        slot.last_used.store(now, Ordering::Relaxed);
        Arc::clone(&slot.value)
    }

    /// Evicts least-recently-used entries until at most `max` remain,
    /// returning how many were dropped. Recency ties (e.g. entries bulk
    /// loaded by [`crate::persist::load_into`] that were never looked up)
    /// break on the entries' encoded key bytes, so eviction is
    /// deterministic for a deterministic access sequence.
    pub fn evict_lru(&self, max: usize) -> usize {
        let mut map = self.entries.write().expect("cache lock");
        if map.len() <= max {
            return 0;
        }
        let mut order: Vec<(u64, Vec<u8>, LayerKey)> = map
            .iter()
            .map(|(key, slot)| {
                (
                    slot.last_used.load(Ordering::Relaxed),
                    crate::persist::key_bytes(key),
                    *key,
                )
            })
            .collect();
        order.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let evict = map.len() - max;
        for (_, _, key) in order.iter().take(evict) {
            map.remove(key);
        }
        self.evictions.fetch_add(evict as u64, Ordering::Relaxed);
        evict
    }

    /// Returns the cached entry or computes, inserts and returns it. The
    /// boolean is `true` on a hit. Counts toward the global counters.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error; nothing is inserted.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: LayerKey,
        compute: impl FnOnce() -> Result<CachedLayer, E>,
    ) -> Result<(Arc<CachedLayer>, bool), E> {
        if let Some(found) = self.get(&key) {
            return Ok((found, true));
        }
        let value = compute()?;
        Ok((self.insert(key, value), false))
    }

    /// A point-in-time copy of every entry (cheap: values are `Arc`s).
    /// Iteration order is the map's; consumers needing determinism (the
    /// [`crate::persist`] serializer) sort the result themselves.
    pub fn snapshot(&self) -> Vec<(LayerKey, Arc<CachedLayer>)> {
        self.entries
            .read()
            .expect("cache lock")
            .iter()
            .map(|(k, slot)| (*k, Arc::clone(&slot.value)))
            .collect()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global hit count across every lookup since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Global miss count across every lookup since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Global count of entries dropped by [`CompiledLayerCache::evict_lru`]
    /// since construction (the daemon samples this into its `metrics`
    /// exposition as `cache_evictions_total`).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Global hit rate in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        self.entries.write().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::zoo;
    use cbrain_sim::Machine;

    fn key_for(layer_name: &str, scheme: Scheme) -> (LayerKey, Layer) {
        let net = zoo::alexnet();
        let layer = net.layer(layer_name).expect("layer exists").clone();
        let key = LayerKey::new(
            &layer,
            scheme,
            &AcceleratorConfig::paper_16_16(),
            &RunOptions::default(),
        );
        (key, layer)
    }

    fn compiled(layer: &Layer, scheme: Scheme) -> CachedLayer {
        let cfg = AcceleratorConfig::paper_16_16();
        let compiled = cbrain_compiler::compile_layer_batched(layer, scheme, &cfg, 1).unwrap();
        let stats = Machine::new(cfg).run(&compiled.program);
        CachedLayer { compiled, stats }
    }

    #[test]
    fn same_geometry_same_key_distinct_scheme_distinct_key() {
        let net = zoo::vgg16();
        let cfg = AcceleratorConfig::paper_16_16();
        let opts = RunOptions::default();
        let a = LayerKey::new(net.layer("conv3_2").unwrap(), Scheme::Inter, &cfg, &opts);
        let b = LayerKey::new(net.layer("conv3_3").unwrap(), Scheme::Inter, &cfg, &opts);
        let c = LayerKey::new(net.layer("conv3_3").unwrap(), Scheme::Intra, &cfg, &opts);
        assert_eq!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn pool_layers_normalize_scheme() {
        let net = zoo::alexnet();
        let cfg = AcceleratorConfig::paper_16_16();
        let opts = RunOptions::default();
        let pool = net.layer("pool1").unwrap();
        let a = LayerKey::new(pool, Scheme::Partition, &cfg, &opts);
        let b = LayerKey::new(pool, Scheme::Intra, &cfg, &opts);
        assert_eq!(a, b);
        assert_eq!(a.scheme, Scheme::Inter);
    }

    #[test]
    fn hit_miss_counting() {
        let cache = CompiledLayerCache::new();
        let (key, layer) = key_for("conv1", Scheme::Partition);
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let (entry, hit) = cache
            .get_or_try_insert_with(key, || {
                Ok::<_, crate::RunError>(compiled(&layer, key.scheme))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(entry.compiled.scheme, Some(Scheme::Partition));

        let (again, hit) = cache
            .get_or_try_insert_with(key, || -> Result<_, crate::RunError> {
                unreachable!("must hit")
            })
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&entry, &again));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert!(cache.hit_rate() > 0.3);
        assert_eq!(cache.len(), 1);

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn evict_lru_drops_coldest_entries_first() {
        let cache = CompiledLayerCache::new();
        let names = ["conv1", "conv2", "conv3"];
        let keys: Vec<LayerKey> = names
            .iter()
            .map(|name| {
                let (key, layer) = key_for(name, Scheme::Inter);
                cache.insert(key, compiled(&layer, key.scheme));
                key
            })
            .collect();
        assert_eq!(cache.len(), 3);
        // Refresh conv1 and conv3; conv2 becomes the LRU entry.
        assert!(cache.peek(&keys[0]).is_some());
        assert!(cache.peek(&keys[2]).is_some());

        assert_eq!(cache.evict_lru(3), 0, "already within bound");
        assert_eq!(cache.evict_lru(2), 1);
        assert!(cache.contains(&keys[0]));
        assert!(!cache.contains(&keys[1]), "LRU entry must go first");
        assert!(cache.contains(&keys[2]));

        assert_eq!(cache.evict_lru(0), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn failed_compute_inserts_nothing() {
        let cache = CompiledLayerCache::new();
        let (key, _) = key_for("conv1", Scheme::Inter);
        let err: Result<(Arc<CachedLayer>, bool), &str> =
            cache.get_or_try_insert_with(key, || Err("boom"));
        assert!(err.is_err());
        assert!(!cache.contains(&key));
    }
}
