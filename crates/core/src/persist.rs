//! On-disk persistence for the [`CompiledLayerCache`].
//!
//! Compiled layers are pure functions of their [`LayerKey`], so a cache
//! file written by one process is valid input for any other — repeated
//! `exp_*` invocations, the `cbrand` daemon across restarts, and the CLI
//! all share one warm store under `~/.cache/cbrain` (overridable, see
//! [`resolved_cache_file`]).
//!
//! The format is an in-tree binary serialization (the workspace builds
//! offline with no serde):
//!
//! ```text
//! magic   b"CBLC"          4 bytes
//! version u32 LE           bumped on any layout change
//! length  u64 LE           payload byte count
//! check   u64 LE           FNV-1a 64 over the payload
//! payload entry count u64 LE, then (LayerKey, CachedLayer) pairs
//! ```
//!
//! Failure modes are deliberately split:
//!
//! * **missing file** — a normal cold start ([`LoadOutcome::Missing`]);
//! * **version mismatch** — an old/newer writer; the reader falls back to
//!   a cold cache ([`LoadOutcome::VersionMismatch`]) rather than guessing
//!   at a foreign layout;
//! * **truncation / corruption** — magic, length or checksum disagree, or
//!   the payload fails to decode; the file is *rejected* with
//!   [`PersistError::Corrupt`] so the caller can surface it (silently
//!   reusing a damaged cache could poison every later report).
//!
//! Saves are atomic: the file is written to a `.tmp` sibling and renamed
//! over the destination, so a crash mid-write never leaves a torn file at
//! the published path.

use crate::cache::{CachedLayer, CompiledLayerCache, LayerKey};
use cbrain_compiler::{CompiledLayer, DataLayout, Scheme, TilePlan};
use cbrain_model::{
    ConvParams, EltwiseOp, EltwiseParams, FcParams, LayerKind, PoolKind, PoolParams, TensorShape,
};
use cbrain_sim::{
    AcceleratorConfig, BufferTraffic, MachineOptions, MacroOp, PeConfig, Program, Stats, Tile,
};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: "C-Brain Layer Cache".
pub const MAGIC: [u8; 4] = *b"CBLC";

/// Current format version. Bump whenever any serialized struct changes.
pub const FORMAT_VERSION: u32 = 1;

/// File name used inside the resolved cache directory.
pub const CACHE_FILE_NAME: &str = "compiled-layers.bin";

/// Error from saving or loading a cache file.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file exists but is not a valid cache file (bad magic, short
    /// header, length/checksum mismatch, undecodable payload, trailing
    /// garbage).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file I/O error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt cache file: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// What a [`load_into`] call found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Entries were decoded and inserted.
    Loaded {
        /// Number of entries inserted into the cache.
        entries: usize,
    },
    /// The file was written by a different format version; the cache is
    /// left cold (no guessing at foreign layouts).
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
    },
    /// No file at the path; a normal cold start.
    Missing,
}

// ---------------------------------------------------------------------
// Primitive encoding: little-endian, length-prefixed strings, u8 tags.
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decode cursor over the payload. Every read is bounds-checked; running
/// off the end is a corruption, not a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Decoded<T> = Result<T, PersistError>;

fn corrupt<T>(why: impl Into<String>) -> Decoded<T> {
    Err(PersistError::Corrupt(why.into()))
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Decoded<&'a [u8]> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => corrupt(format!(
                "payload truncated at byte {} (wanted {n} more)",
                self.pos
            )),
        }
    }

    fn u8(&mut self) -> Decoded<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Decoded<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Decoded<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Decoded<usize> {
        let v = self.u64()?;
        usize::try_from(v).or_else(|_| corrupt(format!("value {v} exceeds usize")))
    }

    fn bool(&mut self) -> Decoded<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => corrupt(format!("invalid bool byte {b:#x}")),
        }
    }

    fn str(&mut self) -> Decoded<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| corrupt("string payload is not valid UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Struct encoding. Field order here *is* the file format; any change
// must bump FORMAT_VERSION.
// ---------------------------------------------------------------------

fn put_shape(out: &mut Vec<u8>, s: TensorShape) {
    put_usize(out, s.maps);
    put_usize(out, s.height);
    put_usize(out, s.width);
}

fn get_shape(c: &mut Cursor) -> Decoded<TensorShape> {
    Ok(TensorShape::new(c.usize()?, c.usize()?, c.usize()?))
}

fn scheme_tag(s: Scheme) -> u8 {
    match s {
        Scheme::Inter => 0,
        Scheme::Intra => 1,
        Scheme::Partition => 2,
        Scheme::InterImproved => 3,
    }
}

fn scheme_from_tag(t: u8) -> Decoded<Scheme> {
    match t {
        0 => Ok(Scheme::Inter),
        1 => Ok(Scheme::Intra),
        2 => Ok(Scheme::Partition),
        3 => Ok(Scheme::InterImproved),
        _ => corrupt(format!("invalid scheme tag {t}")),
    }
}

fn layout_tag(l: DataLayout) -> u8 {
    match l {
        DataLayout::InterOrder => 0,
        DataLayout::IntraOrder => 1,
    }
}

fn layout_from_tag(t: u8) -> Decoded<DataLayout> {
    match t {
        0 => Ok(DataLayout::InterOrder),
        1 => Ok(DataLayout::IntraOrder),
        _ => corrupt(format!("invalid layout tag {t}")),
    }
}

fn put_kind(out: &mut Vec<u8>, kind: &LayerKind) {
    match kind {
        LayerKind::Conv(p) => {
            put_u8(out, 0);
            put_usize(out, p.in_maps);
            put_usize(out, p.out_maps);
            put_usize(out, p.kernel);
            put_usize(out, p.stride);
            put_usize(out, p.pad);
            put_usize(out, p.groups);
        }
        LayerKind::Pool(p) => {
            put_u8(out, 1);
            put_usize(out, p.kernel);
            put_usize(out, p.stride);
            put_u8(out, matches!(p.kind, PoolKind::Average).into());
            put_bool(out, p.ceil_mode);
        }
        LayerKind::FullyConnected(p) => {
            put_u8(out, 2);
            put_usize(out, p.in_features);
            put_usize(out, p.out_features);
        }
        LayerKind::Eltwise(p) => {
            put_u8(out, 3);
            // EltwiseOp currently has one variant; the tag keeps room.
            put_u8(
                out,
                match p.op {
                    EltwiseOp::Add => 0,
                },
            );
        }
    }
}

fn get_kind(c: &mut Cursor) -> Decoded<LayerKind> {
    match c.u8()? {
        0 => {
            let mut p = ConvParams::new(c.usize()?, c.usize()?, c.usize()?, c.usize()?, c.usize()?);
            p.groups = c.usize()?;
            Ok(LayerKind::Conv(p))
        }
        1 => {
            let kernel = c.usize()?;
            let stride = c.usize()?;
            let kind = match c.u8()? {
                0 => PoolKind::Max,
                1 => PoolKind::Average,
                t => return corrupt(format!("invalid pool-kind tag {t}")),
            };
            let ceil_mode = c.bool()?;
            Ok(LayerKind::Pool(PoolParams {
                kernel,
                stride,
                kind,
                ceil_mode,
            }))
        }
        2 => Ok(LayerKind::FullyConnected(FcParams::new(
            c.usize()?,
            c.usize()?,
        ))),
        3 => match c.u8()? {
            0 => Ok(LayerKind::Eltwise(EltwiseParams::add())),
            t => corrupt(format!("invalid eltwise-op tag {t}")),
        },
        t => corrupt(format!("invalid layer-kind tag {t}")),
    }
}

fn put_config(out: &mut Vec<u8>, cfg: &AcceleratorConfig) {
    put_usize(out, cfg.pe.tin);
    put_usize(out, cfg.pe.tout);
    put_usize(out, cfg.inout_buf_bytes);
    put_usize(out, cfg.weight_buf_bytes);
    put_usize(out, cfg.bias_buf_bytes);
    put_usize(out, cfg.dram_bytes_per_cycle);
    put_u64(out, cfg.freq_mhz);
}

fn get_config(c: &mut Cursor) -> Decoded<AcceleratorConfig> {
    Ok(AcceleratorConfig {
        pe: PeConfig::new(c.usize()?, c.usize()?),
        inout_buf_bytes: c.usize()?,
        weight_buf_bytes: c.usize()?,
        bias_buf_bytes: c.usize()?,
        dram_bytes_per_cycle: c.usize()?,
        freq_mhz: c.u64()?,
    })
}

fn put_key(out: &mut Vec<u8>, key: &LayerKey) {
    put_kind(out, &key.kind);
    put_shape(out, key.input);
    put_u8(out, scheme_tag(key.scheme));
    put_config(out, &key.cfg);
    put_bool(out, key.machine.overlap_dma);
    put_bool(out, key.machine.add_store_on_critical_path);
    put_usize(out, key.batch);
}

fn get_key(c: &mut Cursor) -> Decoded<LayerKey> {
    let kind = get_kind(c)?;
    let input = get_shape(c)?;
    let scheme = scheme_from_tag(c.u8()?)?;
    let cfg = get_config(c)?;
    let machine = MachineOptions {
        overlap_dma: c.bool()?,
        add_store_on_critical_path: c.bool()?,
    };
    let batch = c.usize()?;
    Ok(LayerKey {
        kind,
        input,
        scheme,
        cfg,
        machine,
        batch,
    })
}

fn put_op(out: &mut Vec<u8>, op: &MacroOp) {
    match *op {
        MacroOp::MacBurst {
            bursts,
            active_lanes,
            input_reads,
            input_requests,
            weight_reads,
            psum_reads,
            output_writes,
        } => {
            put_u8(out, 0);
            put_u64(out, bursts);
            put_u32(out, active_lanes);
            put_u32(out, input_reads);
            put_u32(out, input_requests);
            put_u32(out, weight_reads);
            put_u32(out, psum_reads);
            put_u32(out, output_writes);
        }
        MacroOp::AddStore { count } => {
            put_u8(out, 1);
            put_u64(out, count);
        }
        MacroOp::OutputWrite { elems } => {
            put_u8(out, 2);
            put_u64(out, elems);
        }
        MacroOp::PoolBurst {
            bursts,
            input_reads,
            output_writes,
        } => {
            put_u8(out, 3);
            put_u64(out, bursts);
            put_u32(out, input_reads);
            put_u32(out, output_writes);
        }
        MacroOp::BiasLoad { elems } => {
            put_u8(out, 4);
            put_u64(out, elems);
        }
        MacroOp::EltwiseBurst {
            bursts,
            input_reads,
            output_writes,
        } => {
            put_u8(out, 5);
            put_u64(out, bursts);
            put_u32(out, input_reads);
            put_u32(out, output_writes);
        }
    }
}

fn get_op(c: &mut Cursor) -> Decoded<MacroOp> {
    match c.u8()? {
        0 => Ok(MacroOp::MacBurst {
            bursts: c.u64()?,
            active_lanes: c.u32()?,
            input_reads: c.u32()?,
            input_requests: c.u32()?,
            weight_reads: c.u32()?,
            psum_reads: c.u32()?,
            output_writes: c.u32()?,
        }),
        1 => Ok(MacroOp::AddStore { count: c.u64()? }),
        2 => Ok(MacroOp::OutputWrite { elems: c.u64()? }),
        3 => Ok(MacroOp::PoolBurst {
            bursts: c.u64()?,
            input_reads: c.u32()?,
            output_writes: c.u32()?,
        }),
        4 => Ok(MacroOp::BiasLoad { elems: c.u64()? }),
        5 => Ok(MacroOp::EltwiseBurst {
            bursts: c.u64()?,
            input_reads: c.u32()?,
            output_writes: c.u32()?,
        }),
        t => corrupt(format!("invalid macro-op tag {t}")),
    }
}

fn put_program(out: &mut Vec<u8>, p: &Program) {
    put_str(out, &p.label);
    put_usize(out, p.tiles.len());
    for tile in &p.tiles {
        put_u64(out, tile.dram_read_bytes);
        put_u64(out, tile.dram_write_bytes);
        put_usize(out, tile.ops.len());
        for op in &tile.ops {
            put_op(out, op);
        }
    }
}

fn get_program(c: &mut Cursor) -> Decoded<Program> {
    let label = c.str()?;
    let n_tiles = c.usize()?;
    // Cap pre-allocation by what the remaining payload could possibly
    // hold, so a corrupt length cannot trigger a huge allocation.
    let mut tiles = Vec::with_capacity(n_tiles.min(c.buf.len() - c.pos));
    for _ in 0..n_tiles {
        let dram_read_bytes = c.u64()?;
        let dram_write_bytes = c.u64()?;
        let n_ops = c.usize()?;
        let mut ops = Vec::with_capacity(n_ops.min(c.buf.len() - c.pos));
        for _ in 0..n_ops {
            ops.push(get_op(c)?);
        }
        tiles.push(Tile {
            dram_read_bytes,
            dram_write_bytes,
            ops,
        });
    }
    Ok(Program { label, tiles })
}

fn put_tile_plan(out: &mut Vec<u8>, t: &TilePlan) {
    put_usize(out, t.spatial_tiles);
    put_usize(out, t.weight_chunks);
    put_usize(out, t.groups);
    put_u64(out, t.input_tile_bytes);
    put_u64(out, t.output_tile_bytes);
    put_u64(out, t.weight_chunk_bytes);
    put_bool(out, t.weights_resident);
    put_u64(out, t.output_group_bytes);
    put_usize(out, t.max_weight_outer_batch);
}

fn get_tile_plan(c: &mut Cursor) -> Decoded<TilePlan> {
    Ok(TilePlan {
        spatial_tiles: c.usize()?,
        weight_chunks: c.usize()?,
        groups: c.usize()?,
        input_tile_bytes: c.u64()?,
        output_tile_bytes: c.u64()?,
        weight_chunk_bytes: c.u64()?,
        weights_resident: c.bool()?,
        output_group_bytes: c.u64()?,
        max_weight_outer_batch: c.usize()?,
    })
}

fn put_traffic(out: &mut Vec<u8>, t: BufferTraffic) {
    put_u64(out, t.loads);
    put_u64(out, t.stores);
}

fn get_traffic(c: &mut Cursor) -> Decoded<BufferTraffic> {
    Ok(BufferTraffic {
        loads: c.u64()?,
        stores: c.u64()?,
    })
}

fn put_stats(out: &mut Vec<u8>, s: &Stats) {
    put_u64(out, s.cycles);
    put_u64(out, s.compute_cycles);
    put_u64(out, s.dram_stall_cycles);
    put_u64(out, s.mac_ops);
    put_u64(out, s.lane_slots);
    put_u64(out, s.add_store_ops);
    put_u64(out, s.eltwise_ops);
    put_traffic(out, s.input_buf);
    put_traffic(out, s.output_buf);
    put_traffic(out, s.weight_buf);
    put_traffic(out, s.bias_buf);
    put_u64(out, s.dram_read_bytes);
    put_u64(out, s.dram_write_bytes);
}

fn get_stats(c: &mut Cursor) -> Decoded<Stats> {
    let mut s = Stats::new();
    s.cycles = c.u64()?;
    s.compute_cycles = c.u64()?;
    s.dram_stall_cycles = c.u64()?;
    s.mac_ops = c.u64()?;
    s.lane_slots = c.u64()?;
    s.add_store_ops = c.u64()?;
    s.eltwise_ops = c.u64()?;
    s.input_buf = get_traffic(c)?;
    s.output_buf = get_traffic(c)?;
    s.weight_buf = get_traffic(c)?;
    s.bias_buf = get_traffic(c)?;
    s.dram_read_bytes = c.u64()?;
    s.dram_write_bytes = c.u64()?;
    Ok(s)
}

fn put_entry(out: &mut Vec<u8>, key: &LayerKey, value: &CachedLayer) {
    put_key(out, key);
    put_program(out, &value.compiled.program);
    match value.compiled.scheme {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_u8(out, scheme_tag(s));
        }
    }
    put_u8(out, layout_tag(value.compiled.wants_input_layout));
    put_u8(out, layout_tag(value.compiled.output_layout));
    put_tile_plan(out, &value.compiled.tiles);
    put_stats(out, &value.stats);
}

fn get_entry(c: &mut Cursor) -> Decoded<(LayerKey, CachedLayer)> {
    let key = get_key(c)?;
    let program = get_program(c)?;
    let scheme = match c.u8()? {
        0 => None,
        1 => Some(scheme_from_tag(c.u8()?)?),
        t => return corrupt(format!("invalid option tag {t}")),
    };
    let wants_input_layout = layout_from_tag(c.u8()?)?;
    let output_layout = layout_from_tag(c.u8()?)?;
    let tiles = get_tile_plan(c)?;
    let stats = get_stats(c)?;
    Ok((
        key,
        CachedLayer {
            compiled: CompiledLayer {
                program,
                scheme,
                wants_input_layout,
                output_layout,
                tiles,
            },
            stats,
        },
    ))
}

/// FNV-1a 64-bit, the checksum of the payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Public entry/key codecs.
//
// The fleet layer reuses the file format's codecs for two jobs: hashing
// a key onto the consistent-hash ring (the encoded bytes are the
// canonical, platform-independent identity of a key) and shipping
// compiled entries over the wire (a shard streams `entry_bytes`, the
// client decodes them back — the exact bytes a local compile would have
// produced, because the entry is a pure function of the key).
// ---------------------------------------------------------------------

/// FNV-1a 64-bit over arbitrary bytes (the same function the file
/// checksum uses). Stable across platforms and versions of this crate.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// The canonical binary encoding of a [`LayerKey`] — the format's key
/// serialization, usable as a deterministic hash/sort identity.
pub fn key_bytes(key: &LayerKey) -> Vec<u8> {
    let mut out = Vec::new();
    put_key(&mut out, key);
    out
}

/// A key's stable 64-bit identity: [`fnv1a64`] over [`key_bytes`]. The
/// fleet ring hashes this onto shards.
pub fn key_hash(key: &LayerKey) -> u64 {
    fnv1a(&key_bytes(key))
}

/// Decodes a [`LayerKey`] written by [`key_bytes`].
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] on truncated or invalid bytes,
/// including trailing garbage.
pub fn decode_key_bytes(bytes: &[u8]) -> Result<LayerKey, PersistError> {
    let mut c = Cursor::new(bytes);
    let key = get_key(&mut c)?;
    if !c.done() {
        return corrupt(format!(
            "{} trailing bytes after the key",
            bytes.len() - c.pos
        ));
    }
    Ok(key)
}

/// The canonical binary encoding of one `(key, entry)` pair — exactly
/// one entry of the cache file's payload, reusable as a wire transport
/// for compiled layers.
pub fn entry_bytes(key: &LayerKey, value: &CachedLayer) -> Vec<u8> {
    let mut out = Vec::new();
    put_entry(&mut out, key, value);
    out
}

/// Decodes a `(key, entry)` pair written by [`entry_bytes`].
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] on truncated or invalid bytes,
/// including trailing garbage.
pub fn decode_entry_bytes(bytes: &[u8]) -> Result<(LayerKey, CachedLayer), PersistError> {
    let mut c = Cursor::new(bytes);
    let pair = get_entry(&mut c)?;
    if !c.done() {
        return corrupt(format!(
            "{} trailing bytes after the entry",
            bytes.len() - c.pos
        ));
    }
    Ok(pair)
}

/// The entry bound `CBRAIN_CACHE_MAX` selects, if any. Delegates to
/// [`crate::config::EnvConfig::cache_max`]: unset, empty, zero or
/// unparsable values all mean "unbounded".
pub fn cache_max_from_env() -> Option<usize> {
    crate::config::EnvConfig::load().cache_max()
}

// ---------------------------------------------------------------------
// Save / load.
// ---------------------------------------------------------------------

/// Serializes the cache's current entries.
///
/// Entries are sorted by their encoded key bytes so the same cache
/// contents always produce the same file, regardless of hash-map
/// iteration order.
fn encode(cache: &CompiledLayerCache) -> Vec<u8> {
    let snapshot = cache.snapshot();
    let mut by_key: Vec<(Vec<u8>, &LayerKey, &Arc<CachedLayer>)> = snapshot
        .iter()
        .map(|(key, value)| {
            let mut kb = Vec::new();
            put_key(&mut kb, key);
            (kb, key, value)
        })
        .collect();
    by_key.sort_by(|a, b| a.0.cmp(&b.0));

    let mut payload = Vec::new();
    put_usize(&mut payload, by_key.len());
    for (_, key, value) in &by_key {
        put_entry(&mut payload, key, value);
    }

    let mut file = Vec::with_capacity(payload.len() + 24);
    file.extend_from_slice(&MAGIC);
    put_u32(&mut file, FORMAT_VERSION);
    put_u64(&mut file, payload.len() as u64);
    put_u64(&mut file, fnv1a(&payload));
    file.extend_from_slice(&payload);
    file
}

/// Saves every cache entry to `path`, creating parent directories.
/// Returns the number of entries written.
///
/// Honors the `CBRAIN_CACHE_MAX` entry bound (see
/// [`crate::config::EnvConfig::cache_max`]): when set, least-recently-used
/// entries are evicted from `cache` first so the file (and the resident
/// cache) stay within the bound.
///
/// The write is atomic (temp file + rename), so readers never observe a
/// half-written file at `path`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failures.
pub fn save(cache: &CompiledLayerCache, path: &Path) -> Result<usize, PersistError> {
    save_with_max(cache, path, cache_max_from_env())
}

/// [`save`] with an explicit entry bound instead of the
/// `CBRAIN_CACHE_MAX` environment lookup. `None` writes everything.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failures.
pub fn save_with_max(
    cache: &CompiledLayerCache,
    path: &Path,
    max_entries: Option<usize>,
) -> Result<usize, PersistError> {
    if let Some(max) = max_entries {
        cache.evict_lru(max);
    }
    let bytes = encode(cache);
    let entries = cache.len();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    let reg = cbrain_telemetry::Registry::global();
    reg.counter(
        "persist_saves_total",
        "cache files written by cbrain::persist",
    )
    .inc();
    reg.counter(
        "persist_bytes_written_total",
        "bytes written to persisted cache files",
    )
    .add(bytes.len() as u64);
    Ok(entries)
}

/// Loads a cache file into `cache` (merging with whatever it holds).
///
/// Missing files and version mismatches are *outcomes*, not errors —
/// both leave the cache usable (cold) and are reported in the returned
/// [`LoadOutcome`] so callers can log them.
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if the file exists at the current
/// version but fails validation (truncation, checksum mismatch, bad
/// tags, trailing bytes), and [`PersistError::Io`] on read failures.
pub fn load_into(cache: &CompiledLayerCache, path: &Path) -> Result<LoadOutcome, PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadOutcome::Missing),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 24 {
        return corrupt(format!("file is {} bytes, header needs 24", bytes.len()));
    }
    if bytes[..4] != MAGIC {
        return corrupt("bad magic (not a cbrain cache file)");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Ok(LoadOutcome::VersionMismatch { found: version });
    }
    let length = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload.len() as u64 != length {
        return corrupt(format!(
            "payload is {} bytes but header claims {length}",
            payload.len()
        ));
    }
    if fnv1a(payload) != checksum {
        return corrupt("checksum mismatch");
    }
    let mut c = Cursor::new(payload);
    let count = c.usize()?;
    let mut decoded = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        decoded.push(get_entry(&mut c)?);
    }
    if !c.done() {
        return corrupt(format!(
            "{} trailing bytes after the last entry",
            payload.len() - c.pos
        ));
    }
    let entries = decoded.len();
    for (key, value) in decoded {
        cache.insert(key, value);
    }
    let reg = cbrain_telemetry::Registry::global();
    reg.counter("persist_loads_total", "cache files read by cbrain::persist")
        .inc();
    reg.counter(
        "persist_bytes_read_total",
        "bytes read from persisted cache files",
    )
    .add(bytes.len() as u64);
    Ok(LoadOutcome::Loaded { entries })
}

/// The cache file the environment selects, or `None` when persistence is
/// disabled (`CBRAIN_CACHE=off|0`) or no cache directory can be derived.
///
/// Delegates to [`crate::config::EnvConfig::cache_file`]; resolution
/// order for the directory: `$CBRAIN_CACHE_DIR`, then
/// `$XDG_CACHE_HOME/cbrain`, then `$HOME/.cache/cbrain`.
pub fn resolved_cache_file() -> Option<PathBuf> {
    crate::config::EnvConfig::load().cache_file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::Policy;
    use crate::runner::Runner;
    use cbrain_model::zoo;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbrain_persist_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn warm_cache() -> Arc<CompiledLayerCache> {
        let runner = Runner::new(AcceleratorConfig::paper_16_16());
        runner.run_network(&zoo::alexnet(), Policy::Oracle).unwrap();
        Arc::clone(runner.cache())
    }

    fn sorted_debug(cache: &CompiledLayerCache) -> Vec<String> {
        let mut v: Vec<String> = cache
            .snapshot()
            .into_iter()
            .map(|(k, e)| format!("{k:?} => {:?} {:?}", e.compiled, e.stats))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn round_trip_preserves_every_entry() {
        let cache = warm_cache();
        let path = tmpdir("rt").join(CACHE_FILE_NAME);
        let written = save(&cache, &path).unwrap();
        assert_eq!(written, cache.len());
        assert!(written > 0);

        let restored = CompiledLayerCache::new();
        let outcome = load_into(&restored, &path).unwrap();
        assert_eq!(
            outcome,
            LoadOutcome::Loaded {
                entries: cache.len()
            }
        );
        assert_eq!(sorted_debug(&cache), sorted_debug(&restored));
    }

    #[test]
    fn save_is_deterministic() {
        let cache = warm_cache();
        assert_eq!(encode(&cache), encode(&cache));
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let cache = CompiledLayerCache::new();
        let out = load_into(&cache, Path::new("/nonexistent/cbrain/cache.bin")).unwrap();
        assert_eq!(out, LoadOutcome::Missing);
        assert!(cache.is_empty());
    }

    #[test]
    fn version_mismatch_falls_back_cold() {
        let cache = warm_cache();
        let path = tmpdir("ver").join(CACHE_FILE_NAME);
        save(&cache, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let restored = CompiledLayerCache::new();
        let out = load_into(&restored, &path).unwrap();
        assert_eq!(
            out,
            LoadOutcome::VersionMismatch {
                found: FORMAT_VERSION + 1
            }
        );
        assert!(restored.is_empty());
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let cache = warm_cache();
        let path = tmpdir("trunc").join(CACHE_FILE_NAME);
        save(&cache, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Sample cut points across the whole file, including inside the
        // header and mid-entry.
        for cut in (0..bytes.len()).step_by(bytes.len() / 37 + 1) {
            let path = path.with_extension(format!("cut{cut}"));
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let restored = CompiledLayerCache::new();
            let res = load_into(&restored, &path);
            assert!(
                matches!(res, Err(PersistError::Corrupt(_))),
                "cut at {cut} was not rejected: {res:?}"
            );
            assert!(restored.is_empty());
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let cache = warm_cache();
        let path = tmpdir("corrupt").join(CACHE_FILE_NAME);
        save(&cache, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one bit in the payload: the checksum catches it.
        let mut bad = good.clone();
        let mid = 24 + (bad.len() - 24) / 2;
        bad[mid] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_into(&CompiledLayerCache::new(), &path),
            Err(PersistError::Corrupt(_))
        ));

        // Garbage magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            load_into(&CompiledLayerCache::new(), &path),
            Err(PersistError::Corrupt(_))
        ));

        // Trailing garbage after a valid payload (header length updated,
        // checksum recomputed — only the cursor-exhaustion check fires).
        let mut bad = good.clone();
        bad.push(0xAB);
        let plen = (bad.len() - 24) as u64;
        bad[8..16].copy_from_slice(&plen.to_le_bytes());
        let ck = fnv1a(&bad[24..]);
        bad[16..24].copy_from_slice(&ck.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let res = load_into(&CompiledLayerCache::new(), &path);
        match res {
            Err(PersistError::Corrupt(why)) => assert!(why.contains("trailing"), "{why}"),
            other => panic!("expected trailing-bytes rejection, got {other:?}"),
        }
    }

    #[test]
    fn warm_load_skips_recompilation() {
        let cache = warm_cache();
        let path = tmpdir("warm").join(CACHE_FILE_NAME);
        save(&cache, &path).unwrap();

        let restored = CompiledLayerCache::shared();
        load_into(&restored, &path).unwrap();
        let runner = Runner::new(AcceleratorConfig::paper_16_16()).with_cache(restored);
        let report = runner.run_network(&zoo::alexnet(), Policy::Oracle).unwrap();
        assert_eq!(report.cache_misses, 0);
        assert!(report.cache_hits > 0);
    }

    #[test]
    fn key_and_entry_codecs_round_trip() {
        let cache = warm_cache();
        for (key, entry) in cache.snapshot() {
            let kb = key_bytes(&key);
            assert_eq!(decode_key_bytes(&kb).unwrap(), key);
            assert_eq!(key_hash(&key), fnv1a64(&kb));
            let eb = entry_bytes(&key, &entry);
            let (k2, e2) = decode_entry_bytes(&eb).unwrap();
            assert_eq!(k2, key);
            assert_eq!(
                format!("{:?} {:?}", entry.compiled, entry.stats),
                format!("{:?} {:?}", e2.compiled, e2.stats)
            );
            let mut trailing = kb.clone();
            trailing.push(0);
            assert!(decode_key_bytes(&trailing).is_err());
            let mut truncated = eb.clone();
            truncated.pop();
            assert!(decode_entry_bytes(&truncated).is_err());
        }
    }

    #[test]
    fn save_with_max_bounds_cache_and_file() {
        let cache = warm_cache();
        assert!(cache.len() > 4, "warm cache too small for the test");
        let path = tmpdir("max").join(CACHE_FILE_NAME);
        let written = save_with_max(&cache, &path, Some(4)).unwrap();
        assert_eq!(written, 4);
        assert_eq!(cache.len(), 4);

        let restored = CompiledLayerCache::new();
        let outcome = load_into(&restored, &path).unwrap();
        assert_eq!(outcome, LoadOutcome::Loaded { entries: 4 });
    }

    #[test]
    fn env_resolution() {
        // Note: env vars are process-global; this test only exercises the
        // explicit-dir branch to stay independent of the host environment.
        let file = resolved_cache_file();
        // Whatever the host env, the result is either disabled or a path
        // ending in the canonical file name.
        if let Some(p) = file {
            assert!(
                p.ends_with(Path::new("cbrain").join(CACHE_FILE_NAME)) || p.file_name().is_some()
            );
        }
    }
}
