//! Fixed-point forward pass on the 16-bit datapath.
//!
//! Table 3 fixes the PE data width at 16-bit fixed point, "validated to be
//! good enough with reference of \[8\]" (DianNao). This module executes
//! convolutions entirely in the accelerator's Q7.8 arithmetic —
//! quantized operands, saturating multiplies, saturating adder-tree
//! accumulation — so that claim can be checked against the f32 reference
//! instead of assumed.

use cbrain_model::{ConvParams, ConvWeights, Fx16, ModelError, Tensor3};

/// Result of a quantized forward pass: the dequantized output plus error
/// statistics against the f32 reference.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRun {
    /// Output computed on the Q7.8 datapath, dequantized to f32.
    pub output: Tensor3,
    /// Maximum absolute error vs the f32 reference.
    pub max_abs_error: f32,
    /// Root-mean-square error vs the f32 reference.
    pub rms_error: f32,
}

/// Runs a convolution on the Q7.8 datapath: inputs, weights and bias are
/// quantized; every multiply and every accumulation saturates at 16 bits
/// exactly as the PE hardware would.
///
/// # Errors
///
/// Propagates shape/parameter errors from the model crate.
///
/// # Examples
///
/// ```
/// use cbrain::quantized::conv_forward_q16;
/// use cbrain_model::{ConvParams, ConvWeights, Tensor3, TensorShape};
///
/// let params = ConvParams::new(3, 8, 5, 1, 2);
/// let input = Tensor3::random(TensorShape::new(3, 16, 16), 1);
/// let weights = ConvWeights::random(&params, 2);
/// let run = conv_forward_q16(&input, &weights, None, &params)?;
/// // Unit-scale activations stay well within Q7.8 range: small error.
/// assert!(run.max_abs_error < 0.1, "{}", run.max_abs_error);
/// # Ok::<(), cbrain_model::ModelError>(())
/// ```
pub fn conv_forward_q16(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: Option<&[f32]>,
    params: &ConvParams,
) -> Result<QuantizedRun, ModelError> {
    params.validate("<q16>")?;
    let out_shape = params.output_shape(input.shape())?;
    let reference = cbrain_model::reference::conv_forward(input, weights, bias, params)?;

    let in_per_group = params.in_maps_per_group();
    let out_per_group = params.out_maps_per_group();
    let pad = params.pad as isize;

    let mut output = Tensor3::zeros(out_shape);
    for o in 0..params.out_maps {
        let group = o / out_per_group;
        let in_base = group * in_per_group;
        let b = Fx16::from_f32(bias.map_or(0.0, |b| b[o]));
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut acc = b;
                let iy0 = (oy * params.stride) as isize - pad;
                let ix0 = (ox * params.stride) as isize - pad;
                for i in 0..in_per_group {
                    for ky in 0..params.kernel {
                        for kx in 0..params.kernel {
                            let v = Fx16::from_f32(input.at_padded(
                                in_base + i,
                                iy0 + ky as isize,
                                ix0 + kx as isize,
                            ));
                            let w = Fx16::from_f32(weights.at(o, i, ky, kx));
                            // Saturating multiply, saturating accumulate —
                            // the PE lane and adder-tree semantics.
                            acc = acc.saturating_add(v.saturating_mul(w));
                        }
                    }
                }
                *output.at_mut(o, oy, ox) = acc.to_f32();
            }
        }
    }

    let max_abs_error = output.max_abs_diff(&reference);
    let n = output.as_slice().len() as f32;
    let rms_error = (output
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum::<f32>()
        / n)
        .sqrt();

    Ok(QuantizedRun {
        output,
        max_abs_error,
        rms_error,
    })
}

/// Per-MAC quantization error bound for a convolution with unit-scale
/// operands: each product contributes at most `2^-8` of rounding error
/// plus the operand quantization noise (`2^-9` each, scaled by the other
/// operand). The total worst case grows with the reduction length
/// `k^2 * Din/groups`.
pub fn worst_case_error_bound(params: &ConvParams, operand_scale: f32) -> f32 {
    let reduction = (params.kernel * params.kernel * params.in_maps_per_group()) as f32;
    let lsb = 1.0 / 256.0;
    // operand rounding (each side) + product rounding, per MAC.
    reduction * (operand_scale * lsb + lsb / 2.0) + lsb / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::TensorShape;

    fn run(params: ConvParams, shape: TensorShape, seed: u64) -> QuantizedRun {
        let input = Tensor3::random(shape, seed);
        let weights = ConvWeights::random(&params, seed + 1);
        let bias: Vec<f32> = (0..params.out_maps).map(|i| i as f32 * 0.01).collect();
        conv_forward_q16(&input, &weights, Some(&bias), &params).unwrap()
    }

    #[test]
    fn error_is_small_for_unit_scale_data() {
        let q = run(
            ConvParams::new(3, 8, 5, 1, 2),
            TensorShape::new(3, 16, 16),
            7,
        );
        assert!(q.max_abs_error < 0.12, "{}", q.max_abs_error);
        assert!(q.rms_error < 0.03, "{}", q.rms_error);
    }

    #[test]
    fn error_within_analytic_bound() {
        let params = ConvParams::new(3, 8, 5, 1, 2);
        let q = run(params, TensorShape::new(3, 16, 16), 11);
        assert!(q.max_abs_error <= worst_case_error_bound(&params, 1.0));
    }

    #[test]
    fn deeper_reductions_accumulate_more_error() {
        let shallow = run(
            ConvParams::new(2, 4, 3, 1, 1),
            TensorShape::new(2, 10, 10),
            3,
        );
        let deep = run(
            ConvParams::new(32, 4, 3, 1, 1),
            TensorShape::new(32, 10, 10),
            3,
        );
        assert!(deep.rms_error > shallow.rms_error);
    }

    #[test]
    fn saturation_clamps_instead_of_wrapping() {
        // All-ones 64-deep reduction with weight 1.0 would reach 64*k^2
        // >> 127.99; the datapath must clamp at Fx16::MAX, not wrap.
        let params = ConvParams::new(64, 1, 3, 1, 0);
        let input = Tensor3::from_fn(TensorShape::new(64, 4, 4), |_, _, _| 1.0);
        let weights = ConvWeights::from_fn(&params, |_, _, _, _| 1.0);
        let q = conv_forward_q16(&input, &weights, None, &params).unwrap();
        let max = q.output.as_slice().iter().fold(f32::MIN, |a, &b| a.max(b));
        assert!((max - Fx16::MAX.to_f32()).abs() < 1e-3, "max={max}");
    }

    #[test]
    fn grouped_convolutions_supported() {
        let q = run(
            ConvParams::grouped(4, 4, 3, 1, 1, 2),
            TensorShape::new(4, 8, 8),
            5,
        );
        assert!(q.max_abs_error < 0.1);
    }

    #[test]
    fn output_matches_reference_shape() {
        let q = run(
            ConvParams::new(3, 6, 3, 2, 0),
            TensorShape::new(3, 11, 11),
            9,
        );
        assert_eq!(q.output.shape(), TensorShape::new(6, 5, 5));
    }
}
