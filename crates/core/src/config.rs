//! The one place `CBRAIN_*` environment variables are read.
//!
//! Eleven knobs configure the workspace from the environment. Each has a
//! single documented precedence: **CLI flag > environment > default**.
//! Call sites never touch [`std::env::var`] for these directly — they go
//! through [`EnvConfig`], which captures the raw environment once and
//! exposes typed accessors:
//!
//! | Variable              | Accessor                                  | Meaning                                        |
//! |-----------------------|-------------------------------------------|------------------------------------------------|
//! | `CBRAIN_CACHE`        | [`persistence_enabled`], [`cache_file`]   | `off`/`0` disables cache persistence entirely  |
//! | `CBRAIN_CACHE_DIR`    | [`cache_file`]                            | overrides the cache *directory*                |
//! | `CBRAIN_CACHE_MAX`    | [`cache_max`]                             | bounds persisted cache entries (LRU-evicted)   |
//! | `CBRAIN_MAC_RATE`     | [`mac_rate`]                              | pins the CPU MAC-rate calibration (Table 4)    |
//! | `CBRAIN_SHARDS`       | [`shards`]                                | default fleet shard list, `HOST:PORT,...`      |
//! | `CBRAIN_JOURNAL`      | [`journal_file`]                          | default run-journal path for sweeps            |
//! | `CBRAIN_RESUME`       | [`resume`]                                | `1`/`true`/`on` resumes from the journal       |
//! | `CBRAIN_FORCE_SCALAR` | [`force_scalar`]                          | `1`/`true`/`on` pins the scalar SIMD fallback  |
//! | `CBRAIN_TELEMETRY`    | [`telemetry_enabled`]                     | `off`/`0`/`false`/`no` disables span timing    |
//! | `CBRAIN_METRICS_ADDR` | [`metrics_addr`]                          | default `cbrand --metrics-addr` listen address |
//! | `CBRAIN_MAX_CONNS`    | [`max_conns`]                             | default `cbrand --max-connections` accept cap  |
//!
//! [`persistence_enabled`]: EnvConfig::persistence_enabled
//! [`cache_file`]: EnvConfig::cache_file
//! [`cache_max`]: EnvConfig::cache_max
//! [`mac_rate`]: EnvConfig::mac_rate
//! [`shards`]: EnvConfig::shards
//! [`journal_file`]: EnvConfig::journal_file
//! [`resume`]: EnvConfig::resume
//! [`force_scalar`]: EnvConfig::force_scalar
//! [`telemetry_enabled`]: EnvConfig::telemetry_enabled
//! [`metrics_addr`]: EnvConfig::metrics_addr
//! [`max_conns`]: EnvConfig::max_conns
//!
//! The struct is a plain snapshot: [`EnvConfig::load`] reads the process
//! environment, [`EnvConfig::from_lookup`] builds one from any closure so
//! tests never have to mutate process-global state.
//!
//! Two documented exceptions to "call sites go through `EnvConfig`":
//! `CBRAIN_FORCE_SCALAR` is *acted on* inside `cbrain_simd` (re-exported
//! as [`cbrain_model::simd`]) and `CBRAIN_TELEMETRY` inside
//! `cbrain_telemetry` (re-exported as [`crate::telemetry`]) — both crates
//! sit below this one in the dependency graph and therefore cannot see
//! [`EnvConfig`]. Each reads its variable once, at first use, with
//! exactly the truth-parsing rules the matching accessor here documents
//! ([`EnvConfig::force_scalar`] / [`EnvConfig::telemetry_enabled`]); the
//! accessors exist so operator tooling reports the knobs alongside the
//! other eight.

use std::path::PathBuf;

/// Disables cache persistence entirely when set to `off` or `0`.
pub const ENV_CACHE: &str = "CBRAIN_CACHE";

/// Overrides the cache *directory* (the file name inside it is fixed).
pub const ENV_CACHE_DIR: &str = "CBRAIN_CACHE_DIR";

/// Bounds the number of persisted cache entries. When set to a positive
/// integer, save paths evict least-recently-used entries down to the
/// bound before writing, so long-lived caches (the `cbrand` daemon, a
/// fleet shard) stop growing without bound.
pub const ENV_CACHE_MAX: &str = "CBRAIN_CACHE_MAX";

/// Pins the host-CPU MAC-rate calibration (MACs/second) used by the
/// Table 4 experiment, making its output byte-reproducible.
pub const ENV_MAC_RATE: &str = "CBRAIN_MAC_RATE";

/// Default fleet shard list (`HOST:PORT,HOST:PORT,...`) for
/// `exp_all --shards` and `cbrain fleet-client` when no flag is given.
pub const ENV_SHARDS: &str = "CBRAIN_SHARDS";

/// Default run-journal path for `exp_all` and `cbrain run` when no
/// `--journal` flag is given (see [`crate::journal`]).
pub const ENV_JOURNAL: &str = "CBRAIN_JOURNAL";

/// Enables `--resume` semantics from the environment: completed cells
/// found in the journal are replayed instead of re-simulated.
pub const ENV_RESUME: &str = "CBRAIN_RESUME";

/// Pins every SIMD kernel to its scalar fallback (see
/// [`cbrain_model::simd`]). The differential-test escape hatch: results
/// must be bit-identical either way, so flipping this only changes speed.
pub const ENV_FORCE_SCALAR: &str = cbrain_model::simd::ENV_FORCE_SCALAR;

/// The telemetry kill switch (see [`crate::telemetry`]): `off`, `0`,
/// `false` or `no` disables span/histogram timing; anything else —
/// including unset — leaves it on. Counters and gauges keep counting
/// either way because the `stats`/`progress` wire responses read them.
pub const ENV_TELEMETRY: &str = cbrain_telemetry::ENV_TELEMETRY;

/// Default listen address for `cbrand --metrics-addr` (Prometheus
/// text-format exposition over `GET /metrics`). The flag always beats
/// this; unset or blank means "no exposition listener".
pub const ENV_METRICS_ADDR: &str = "CBRAIN_METRICS_ADDR";

/// Default cap on concurrently open daemon connections for
/// `cbrand --max-connections`. Connections arriving past the cap are
/// answered with `busy` instead of queueing in the kernel backlog. The
/// flag always beats this; unset, blank, zero or unparsable all mean
/// "no cap".
pub const ENV_MAX_CONNS: &str = "CBRAIN_MAX_CONNS";

/// A typed snapshot of every `CBRAIN_*` environment variable (plus the
/// `XDG_CACHE_HOME`/`HOME` fallbacks that cache-path resolution needs).
///
/// Construction captures raw strings only; interpretation happens in the
/// accessors so each knob keeps its own leniency rules (see each method).
#[derive(Debug, Clone, Default)]
pub struct EnvConfig {
    cache: Option<String>,
    cache_dir: Option<String>,
    cache_max: Option<String>,
    mac_rate: Option<String>,
    shards: Option<String>,
    journal: Option<String>,
    resume: Option<String>,
    force_scalar: Option<String>,
    telemetry: Option<String>,
    metrics_addr: Option<String>,
    max_conns: Option<String>,
    xdg_cache_home: Option<String>,
    home: Option<String>,
}

impl EnvConfig {
    /// Snapshots the process environment. This is the only function in
    /// the workspace that reads `CBRAIN_*` variables.
    #[must_use]
    pub fn load() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Builds a config from an arbitrary lookup, so tests can exercise
    /// every branch without mutating process-global environment state.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        Self {
            cache: lookup(ENV_CACHE),
            cache_dir: lookup(ENV_CACHE_DIR),
            cache_max: lookup(ENV_CACHE_MAX),
            mac_rate: lookup(ENV_MAC_RATE),
            shards: lookup(ENV_SHARDS),
            journal: lookup(ENV_JOURNAL),
            resume: lookup(ENV_RESUME),
            force_scalar: lookup(ENV_FORCE_SCALAR),
            telemetry: lookup(ENV_TELEMETRY),
            metrics_addr: lookup(ENV_METRICS_ADDR),
            max_conns: lookup(ENV_MAX_CONNS),
            xdg_cache_home: lookup("XDG_CACHE_HOME"),
            home: lookup("HOME"),
        }
    }

    /// Whether cache persistence is enabled at all. `CBRAIN_CACHE=off`
    /// or `=0` disables it; anything else (including unset) enables it.
    #[must_use]
    pub fn persistence_enabled(&self) -> bool {
        !matches!(self.cache.as_deref(), Some("off") | Some("0"))
    }

    /// The cache file the environment selects, or `None` when
    /// persistence is disabled or no cache directory can be derived.
    ///
    /// Resolution order for the directory: `$CBRAIN_CACHE_DIR`, then
    /// `$XDG_CACHE_HOME/cbrain`, then `$HOME/.cache/cbrain`.
    #[must_use]
    pub fn cache_file(&self) -> Option<PathBuf> {
        if !self.persistence_enabled() {
            return None;
        }
        let dir = if let Some(d) = &self.cache_dir {
            PathBuf::from(d)
        } else if let Some(d) = &self.xdg_cache_home {
            PathBuf::from(d).join("cbrain")
        } else if let Some(h) = &self.home {
            PathBuf::from(h).join(".cache").join("cbrain")
        } else {
            return None;
        };
        Some(dir.join(crate::persist::CACHE_FILE_NAME))
    }

    /// The persisted-entry bound, if any. Unset, empty, zero or
    /// unparsable values all mean "unbounded" — a bad bound must never
    /// make a save path fail.
    #[must_use]
    pub fn cache_max(&self) -> Option<usize> {
        self.cache_max
            .as_deref()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    }

    /// The pinned MAC rate in MACs/second, or `None` to calibrate live.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but not a positive finite number:
    /// a typo'd pin would otherwise silently un-pin Table 4 and break
    /// byte-identity diffs, which is exactly what the pin exists for.
    #[must_use]
    pub fn mac_rate(&self) -> Option<f64> {
        let raw = self.mac_rate.as_deref()?;
        let rate = raw
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|r| r.is_finite() && *r > 0.0)
            .unwrap_or_else(|| panic!("{ENV_MAC_RATE} must be a positive number, got `{raw}`"));
        Some(rate)
    }

    /// The default shard list, split on commas with empty segments
    /// dropped. `None` when the variable is unset or contains no
    /// non-empty segment.
    #[must_use]
    pub fn shards(&self) -> Option<Vec<String>> {
        let list: Vec<String> = self
            .shards
            .as_deref()?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if list.is_empty() {
            None
        } else {
            Some(list)
        }
    }

    /// The default journal file, or `None` when the variable is unset or
    /// blank. A flag (`--journal`) always beats this.
    #[must_use]
    pub fn journal_file(&self) -> Option<PathBuf> {
        self.journal
            .as_deref()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
    }

    /// Whether the environment requests resume-from-journal. `1`, `true`
    /// or `on` (case-insensitive) enable it; anything else — including
    /// unset, empty and typos — leaves resume off, because a silently
    /// mis-enabled resume would skip simulation the operator expected to
    /// run.
    #[must_use]
    pub fn resume(&self) -> bool {
        matches!(
            self.resume
                .as_deref()
                .map(str::trim)
                .map(str::to_ascii_lowercase)
                .as_deref(),
            Some("1") | Some("true") | Some("on")
        )
    }

    /// Whether the environment pins SIMD kernels to the scalar fallback.
    /// Same truth rules as [`EnvConfig::resume`]: `1`, `true` or `on`
    /// (case-insensitive); anything else leaves SIMD dispatch on.
    ///
    /// Reporting-only here — the dispatch decision itself is made (with
    /// identical parsing) inside `cbrain_simd`, the one crate allowed to
    /// read this variable directly (see the module docs).
    #[must_use]
    pub fn force_scalar(&self) -> bool {
        matches!(
            self.force_scalar
                .as_deref()
                .map(str::trim)
                .map(str::to_ascii_lowercase)
                .as_deref(),
            Some("1") | Some("true") | Some("on")
        )
    }

    /// Whether span/histogram timing is enabled. `off`, `0`, `false` or
    /// `no` (case-insensitive, trimmed) disable it; anything else —
    /// including unset — enables it, because telemetry is designed to be
    /// on by default and byte-invisible to reports.
    ///
    /// Reporting-only here — the gate itself is read (with identical
    /// parsing, via [`cbrain_telemetry::value_means_off`]) inside
    /// `cbrain_telemetry`, the second crate allowed to read its variable
    /// directly (see the module docs).
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        match self.telemetry.as_deref() {
            Some(v) => !cbrain_telemetry::value_means_off(v),
            None => true,
        }
    }

    /// The default metrics listen address (`HOST:PORT`), or `None` when
    /// the variable is unset or blank. A flag (`--metrics-addr`) always
    /// beats this.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<String> {
        self.metrics_addr
            .as_deref()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
    }

    /// The default connection cap, if any. Same leniency as
    /// [`EnvConfig::cache_max`]: unset, empty, zero or unparsable all
    /// mean "uncapped" — a typo'd cap must never refuse every client.
    #[must_use]
    pub fn max_conns(&self) -> Option<usize> {
        self.max_conns
            .as_deref()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::path::Path;

    fn config(pairs: &[(&str, &str)]) -> EnvConfig {
        let map: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        EnvConfig::from_lookup(|key| map.get(key).cloned())
    }

    #[test]
    fn cache_switch_disables_persistence() {
        for off in ["off", "0"] {
            let cfg = config(&[(ENV_CACHE, off), (ENV_CACHE_DIR, "/tmp/x")]);
            assert!(!cfg.persistence_enabled());
            assert_eq!(cfg.cache_file(), None);
        }
        let cfg = config(&[(ENV_CACHE, "auto"), (ENV_CACHE_DIR, "/tmp/x")]);
        assert!(cfg.persistence_enabled());
        assert!(cfg.cache_file().is_some());
    }

    #[test]
    fn cache_dir_resolution_order() {
        let explicit = config(&[
            (ENV_CACHE_DIR, "/d"),
            ("XDG_CACHE_HOME", "/x"),
            ("HOME", "/h"),
        ]);
        assert_eq!(
            explicit.cache_file(),
            Some(Path::new("/d").join(crate::persist::CACHE_FILE_NAME))
        );
        let xdg = config(&[("XDG_CACHE_HOME", "/x"), ("HOME", "/h")]);
        assert_eq!(
            xdg.cache_file(),
            Some(Path::new("/x/cbrain").join(crate::persist::CACHE_FILE_NAME))
        );
        let home = config(&[("HOME", "/h")]);
        assert_eq!(
            home.cache_file(),
            Some(Path::new("/h/.cache/cbrain").join(crate::persist::CACHE_FILE_NAME))
        );
        assert_eq!(config(&[]).cache_file(), None);
    }

    #[test]
    fn cache_max_is_lenient() {
        assert_eq!(config(&[(ENV_CACHE_MAX, " 12 ")]).cache_max(), Some(12));
        for bad in ["", "0", "-3", "lots"] {
            assert_eq!(config(&[(ENV_CACHE_MAX, bad)]).cache_max(), None);
        }
        assert_eq!(config(&[]).cache_max(), None);
    }

    #[test]
    fn mac_rate_parses_or_is_absent() {
        assert_eq!(config(&[(ENV_MAC_RATE, "5.7e8")]).mac_rate(), Some(5.7e8));
        assert_eq!(config(&[]).mac_rate(), None);
    }

    #[test]
    #[should_panic(expected = "CBRAIN_MAC_RATE must be a positive number")]
    fn mac_rate_rejects_garbage() {
        let _ = config(&[(ENV_MAC_RATE, "fast")]).mac_rate();
    }

    #[test]
    #[should_panic(expected = "CBRAIN_MAC_RATE must be a positive number")]
    fn mac_rate_rejects_nonpositive() {
        let _ = config(&[(ENV_MAC_RATE, "-1.0")]).mac_rate();
    }

    #[test]
    fn journal_path_ignores_blank_values() {
        assert_eq!(
            config(&[(ENV_JOURNAL, " /tmp/j.bin ")]).journal_file(),
            Some(PathBuf::from("/tmp/j.bin"))
        );
        assert_eq!(config(&[(ENV_JOURNAL, "  ")]).journal_file(), None);
        assert_eq!(config(&[]).journal_file(), None);
    }

    #[test]
    fn resume_accepts_only_explicit_truths() {
        for yes in ["1", "true", "on", " TRUE ", "On"] {
            assert!(config(&[(ENV_RESUME, yes)]).resume(), "{yes:?}");
        }
        for no in ["", "0", "false", "off", "yes", "resume"] {
            assert!(!config(&[(ENV_RESUME, no)]).resume(), "{no:?}");
        }
        assert!(!config(&[]).resume());
    }

    #[test]
    fn force_scalar_accepts_only_explicit_truths() {
        for yes in ["1", "true", "on", " TRUE ", "On"] {
            assert!(config(&[(ENV_FORCE_SCALAR, yes)]).force_scalar(), "{yes:?}");
        }
        for no in ["", "0", "false", "off", "yes", "scalar"] {
            assert!(!config(&[(ENV_FORCE_SCALAR, no)]).force_scalar(), "{no:?}");
        }
        assert!(!config(&[]).force_scalar());
    }

    #[test]
    fn force_scalar_name_matches_the_simd_crate() {
        // The dispatch-time read lives in cbrain_simd; the two constants
        // must never drift apart.
        assert_eq!(ENV_FORCE_SCALAR, "CBRAIN_FORCE_SCALAR");
    }

    #[test]
    fn telemetry_defaults_on_and_disables_only_on_explicit_off() {
        assert!(config(&[]).telemetry_enabled(), "unset means on");
        for off in ["off", "OFF", " 0 ", "false", "no"] {
            assert!(
                !config(&[(ENV_TELEMETRY, off)]).telemetry_enabled(),
                "{off:?}"
            );
        }
        for on in ["on", "1", "true", "", "yes", "typo"] {
            assert!(config(&[(ENV_TELEMETRY, on)]).telemetry_enabled(), "{on:?}");
        }
    }

    #[test]
    fn telemetry_name_matches_the_telemetry_crate() {
        // The gate-time read lives in cbrain_telemetry; the two constants
        // must never drift apart.
        assert_eq!(ENV_TELEMETRY, "CBRAIN_TELEMETRY");
    }

    #[test]
    fn metrics_addr_ignores_blank_values() {
        assert_eq!(
            config(&[(ENV_METRICS_ADDR, " 127.0.0.1:9200 ")]).metrics_addr(),
            Some("127.0.0.1:9200".to_owned())
        );
        assert_eq!(config(&[(ENV_METRICS_ADDR, "  ")]).metrics_addr(), None);
        assert_eq!(config(&[]).metrics_addr(), None);
    }

    #[test]
    fn max_conns_is_lenient() {
        assert_eq!(config(&[(ENV_MAX_CONNS, " 500 ")]).max_conns(), Some(500));
        for bad in ["", "0", "-2", "many"] {
            assert_eq!(config(&[(ENV_MAX_CONNS, bad)]).max_conns(), None);
        }
        assert_eq!(config(&[]).max_conns(), None);
    }

    #[test]
    fn max_conns_name_matches_the_daemon_flag() {
        assert_eq!(ENV_MAX_CONNS, "CBRAIN_MAX_CONNS");
    }

    #[test]
    fn shards_split_and_trim() {
        assert_eq!(
            config(&[(ENV_SHARDS, "a:1, b:2 ,,c:3")]).shards(),
            Some(vec!["a:1".to_owned(), "b:2".to_owned(), "c:3".to_owned()])
        );
        assert_eq!(config(&[(ENV_SHARDS, " , ")]).shards(), None);
        assert_eq!(config(&[]).shards(), None);
    }
}
