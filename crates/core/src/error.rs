//! Error type for network runs.

use cbrain_compiler::CompileError;
use cbrain_model::ModelError;
use std::error::Error;
use std::fmt;

/// Error produced while running a network through the simulated
/// accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A layer failed to compile.
    Compile(CompileError),
    /// The network description itself is invalid.
    Model(ModelError),
    /// The requested workload selected no layers (e.g. `Conv1Only` on a
    /// network with no convolutions).
    EmptyWorkload {
        /// Network name.
        network: String,
    },
    /// An external [`crate::CompileBackend`] failed to execute the
    /// work-list (the message carries the backend's own diagnosis,
    /// possibly relayed from another thread or process).
    Backend(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile failed: {e}"),
            RunError::Model(e) => write!(f, "invalid network: {e}"),
            RunError::EmptyWorkload { network } => {
                write!(f, "workload selected no layers of network `{network}`")
            }
            RunError::Backend(message) => write!(f, "compile backend failed: {message}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Compile(e) => Some(e),
            RunError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for RunError {
    fn from(e: CompileError) -> Self {
        RunError::Compile(e)
    }
}

impl From<ModelError> for RunError {
    fn from(e: ModelError) -> Self {
        RunError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RunError::from(ModelError::InvalidLayer {
            layer: "c".into(),
            reason: "r".into(),
        });
        assert!(e.to_string().contains("invalid network"));
        assert!(e.source().is_some());

        let e = RunError::EmptyWorkload {
            network: "tiny".into(),
        };
        assert!(e.to_string().contains("tiny"));
        assert!(e.source().is_none());
    }
}
