//! Adaptive scheme selection (paper Algorithm 2) and run policies.

use cbrain_compiler::Scheme;
use cbrain_model::ConvParams;
use cbrain_sim::AcceleratorConfig;
use std::fmt;

/// How a network run chooses per-layer schemes.
///
/// # Examples
///
/// ```
/// use cbrain::{Policy, Runner, Scheme};
/// use cbrain_model::zoo;
/// use cbrain_sim::AcceleratorConfig;
///
/// let runner = Runner::new(AcceleratorConfig::paper_16_16());
/// let net = zoo::alexnet();
/// let adaptive = runner.run_network(&net, Policy::Adaptive { improved_inter: true })?;
/// let inter = runner.run_network(&net, Policy::Fixed(Scheme::Inter))?;
/// // The paper's headline: adaptive selection beats any fixed scheme.
/// assert!(adaptive.speedup_over(&inter) > 1.0);
/// # Ok::<(), cbrain::RunError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Every conv layer uses the same scheme (the paper's `inter`,
    /// `intra`, `partition` experiment arms).
    Fixed(Scheme),
    /// Algorithm 2 per layer. `improved_inter = false` is the paper's
    /// `adpa-1`; `true` is `adpa-2` (Sec. 4.2.2 inter-kernel).
    Adaptive {
        /// Use the improved inter-kernel mapping for inter-selected layers.
        improved_inter: bool,
    },
    /// Exhaustive per-layer search: compile and simulate every scheme and
    /// keep the cheapest (an oracle upper bound for what *any* selection
    /// heuristic can achieve). Not in the paper; used to quantify how
    /// close Algorithm 2 gets to optimal.
    Oracle,
    /// The Oracle search pruned by the analytic cost model
    /// ([`cbrain_compiler::cost`]): schemes are visited in ascending
    /// order of their closed-form compute-cycle lower bound, and any
    /// scheme whose bound already exceeds the best *simulated* candidate
    /// is skipped without compiling. Picks the exact same per-layer
    /// schemes as [`Policy::Oracle`] (the bound is sound: total cycles
    /// can never undercut compute cycles) while compiling fewer of them.
    OraclePruned,
}

impl Policy {
    /// The paper's five experiment arms, in Fig. 8 order.
    pub const PAPER_ARMS: [Policy; 5] = [
        Policy::Fixed(Scheme::Inter),
        Policy::Fixed(Scheme::Intra),
        Policy::Fixed(Scheme::Partition),
        Policy::Adaptive {
            improved_inter: false,
        },
        Policy::Adaptive {
            improved_inter: true,
        },
    ];

    /// The paper's label for this arm (`inter`, `intra`, `partition`,
    /// `adpa-1`, `adpa-2`).
    pub const fn label(&self) -> &'static str {
        match self {
            Policy::Fixed(Scheme::Inter) => "inter",
            Policy::Fixed(Scheme::Intra) => "intra",
            Policy::Fixed(Scheme::Partition) => "partition",
            Policy::Fixed(Scheme::InterImproved) => "inter-improved",
            Policy::Adaptive {
                improved_inter: false,
            } => "adpa-1",
            Policy::Adaptive {
                improved_inter: true,
            } => "adpa-2",
            Policy::Oracle => "oracle",
            Policy::OraclePruned => "oracle-pruned",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from parsing a policy label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(pub String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown policy `{}`", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

impl std::str::FromStr for Policy {
    type Err = ParsePolicyError;

    /// Parses the labels [`Policy::label`] produces, plus the scheme
    /// names as `Fixed` shorthands (the CLI's historical aliases live in
    /// the CLI, not here).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "adpa-1" => Ok(Policy::Adaptive {
                improved_inter: false,
            }),
            "adpa-2" => Ok(Policy::Adaptive {
                improved_inter: true,
            }),
            "oracle" => Ok(Policy::Oracle),
            "oracle-pruned" => Ok(Policy::OraclePruned),
            other => other
                .parse::<Scheme>()
                .map(Policy::Fixed)
                .map_err(|_| ParsePolicyError(other.to_owned())),
        }
    }
}

/// Algorithm 2, lines 1-3: pick the scheme for one convolution layer.
///
/// ```text
/// 1: IF k = s and k != 1, THEN select intra-kernel parallelism
/// 2: ELSE-IF Din < Tin, THEN select kernel-partition
/// 3: ELSE select inter-kernel parallelism
/// ```
///
/// `Din` is the per-group input-map count (the paper's Table 2 counts
/// AlexNet c2 as `Din = 48` accordingly).
///
/// # Examples
///
/// ```
/// use cbrain::adaptive::select_scheme;
/// use cbrain_compiler::Scheme;
/// use cbrain_model::ConvParams;
/// use cbrain_sim::AcceleratorConfig;
///
/// let cfg = AcceleratorConfig::paper_16_16();
/// // AlexNet conv1: k=11 != s=4, Din=3 < 16 -> kernel partition.
/// let c1 = ConvParams::new(3, 96, 11, 4, 0);
/// assert_eq!(select_scheme(&c1, &cfg, false), Scheme::Partition);
/// ```
pub fn select_scheme(conv: &ConvParams, cfg: &AcceleratorConfig, improved_inter: bool) -> Scheme {
    if conv.kernel == conv.stride && conv.kernel != 1 {
        Scheme::Intra
    } else if conv.in_maps_per_group() < cfg.pe.tin {
        Scheme::Partition
    } else if improved_inter {
        Scheme::InterImproved
    } else {
        Scheme::Inter
    }
}

/// Resolves the scheme a policy assigns to one convolution layer.
///
/// [`Policy::Oracle`] has no closed-form answer (it simulates every
/// scheme); this function returns Algorithm 2's adpa-2 choice as its
/// stand-in — the runner overrides it with the true per-layer search.
pub fn scheme_for(policy: Policy, conv: &ConvParams, cfg: &AcceleratorConfig) -> Scheme {
    match policy {
        Policy::Fixed(s) => s,
        Policy::Adaptive { improved_inter } => select_scheme(conv, cfg, improved_inter),
        Policy::Oracle | Policy::OraclePruned => select_scheme(conv, cfg, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::zoo;

    fn cfg16() -> AcceleratorConfig {
        AcceleratorConfig::paper_16_16()
    }

    fn cfg32() -> AcceleratorConfig {
        AcceleratorConfig::paper_32_32()
    }

    #[test]
    fn bottom_layers_get_partition() {
        // All four benchmark conv1 layers have Din = 3 < Tin.
        for net in zoo::all() {
            let c1 = net.conv1().as_conv().unwrap();
            assert_eq!(
                select_scheme(c1, &cfg16(), false),
                Scheme::Partition,
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn deep_layers_get_inter() {
        let net = zoo::alexnet();
        for name in ["conv2", "conv3", "conv4", "conv5"] {
            let p = net.layer(name).unwrap().as_conv().unwrap();
            assert_eq!(select_scheme(p, &cfg16(), false), Scheme::Inter, "{name}");
            assert_eq!(
                select_scheme(p, &cfg16(), true),
                Scheme::InterImproved,
                "{name}"
            );
        }
    }

    #[test]
    fn k_equals_s_selects_intra() {
        // A hypothetical non-overlapping conv (k = s = 2).
        let p = ConvParams::new(64, 64, 2, 2, 0);
        assert_eq!(select_scheme(&p, &cfg16(), false), Scheme::Intra);
    }

    #[test]
    fn one_by_one_layers_never_intra() {
        // Algorithm 2 line 1 explicitly requires k != 1.
        let p = ConvParams::new(192, 64, 1, 1, 0);
        assert_eq!(select_scheme(&p, &cfg16(), false), Scheme::Inter);
    }

    #[test]
    fn wider_array_partitions_more_layers() {
        // GoogLeNet's 5x5-reduce outputs feed 5x5 convs with Din 16-48;
        // at Tin=32 more of them fall below the threshold.
        let p = ConvParams::new(24, 64, 5, 1, 2);
        assert_eq!(select_scheme(&p, &cfg16(), false), Scheme::Inter);
        assert_eq!(select_scheme(&p, &cfg32(), false), Scheme::Partition);
    }

    #[test]
    fn grouped_din_uses_per_group_depth() {
        // AlexNet c2: 96 maps in 2 groups -> Din = 48 >= 16 -> inter.
        let net = zoo::alexnet();
        let c2 = net.layer("conv2").unwrap().as_conv().unwrap();
        assert_eq!(select_scheme(c2, &cfg16(), false), Scheme::Inter);
        // At Tin=32, 48 >= 32 still inter; a 4-group variant would flip.
        assert_eq!(select_scheme(c2, &cfg32(), false), Scheme::Inter);
    }

    #[test]
    fn policy_labels_match_paper() {
        let labels: Vec<_> = Policy::PAPER_ARMS.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["inter", "intra", "partition", "adpa-1", "adpa-2"]);
    }

    #[test]
    fn fixed_policy_overrides_selection() {
        let net = zoo::alexnet();
        let c1 = net.conv1().as_conv().unwrap();
        assert_eq!(
            scheme_for(Policy::Fixed(Scheme::Inter), c1, &cfg16()),
            Scheme::Inter
        );
        assert_eq!(
            scheme_for(
                Policy::Adaptive {
                    improved_inter: true
                },
                c1,
                &cfg16()
            ),
            Scheme::Partition
        );
    }
}
