//! Deterministic fork-join pool built on `std::thread::scope`.
//!
//! The experiment harness fans out independent cells — (network, config,
//! arm) triples, per-layer Oracle probes, compile work-lists — and needs
//! the fan-out to be *invisible* in the output: running with 8 workers
//! must produce byte-identical results to running serially. The pool
//! guarantees that by construction: work items are claimed from a shared
//! queue in submission order, each worker writes its result into the
//! slot reserved for that item's index, and [`parallel_map`] returns the
//! slots in index order. Scheduling can change *when* an item runs,
//! never *where its result lands*.
//!
//! DESIGN.md sanctions scoped `std::thread` for exactly this: no external
//! runtime, no work stealing, results merged in fixed order.

use std::sync::Mutex;

/// Number of jobs to use when the caller does not say: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// `jobs <= 1` (or a single item) runs inline on the caller's thread —
/// the serial path and the parallel path produce identical output, so
/// callers can thread a `--jobs` flag straight through.
///
/// # Panics
///
/// If `f` panics on any item the panic propagates to the caller once the
/// scope joins.
///
/// # Examples
///
/// ```
/// use cbrain::pool::parallel_map;
///
/// let squares = parallel_map(4, (0..100).collect(), |n: u64| n * n);
/// assert_eq!(squares, parallel_map(1, (0..100).collect(), |n: u64| n * n));
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<T, U, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim under the lock, compute outside it.
                let claimed = queue.lock().expect("pool queue").next();
                let Some((index, item)) = claimed else { break };
                let result = f(item);
                *slots[index].lock().expect("pool slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool slot")
                .expect("every slot is filled before the scope joins")
        })
        .collect()
}

/// [`parallel_map`] for fallible work: stops at nothing (every item runs)
/// but returns the first error in *input order*, so error reporting is as
/// deterministic as the success path.
///
/// # Errors
///
/// The error of the lowest-indexed failing item, if any.
pub fn try_parallel_map<T, U, E, F>(jobs: usize, items: Vec<T>, f: F) -> Result<Vec<U>, E>
where
    T: Send,
    U: Send,
    E: Send,
    F: Fn(T) -> Result<U, E> + Sync,
{
    parallel_map(jobs, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_at_any_width() {
        let input: Vec<usize> = (0..257).collect();
        let serial = parallel_map(1, input.clone(), |n| n * 3 + 1);
        for jobs in [2, 3, 8, 64, 1000] {
            assert_eq!(parallel_map(jobs, input.clone(), |n| n * 3 + 1), serial);
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map(4, (0..100).collect::<Vec<usize>>(), |n| {
            count.fetch_add(1, Ordering::Relaxed);
            n
        });
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = parallel_map(8, Vec::new(), |n: u32| n);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(8, vec![9], |n: u32| n + 1), vec![10]);
    }

    #[test]
    fn first_error_in_input_order_wins() {
        let r = try_parallel_map(4, (0..50).collect::<Vec<usize>>(), |n| {
            if n % 10 == 7 {
                Err(n)
            } else {
                Ok(n)
            }
        });
        assert_eq!(r, Err(7));
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
