//! Durable run journal: checkpoint/resume for experiment sweeps.
//!
//! A journal records each **completed experiment cell** — a named unit of
//! sweep work (one `exp_*` table, or one `cbrain run` invocation) — along
//! with a digest of its rendered report and the report text itself. A
//! resumed sweep replays journaled cells verbatim instead of re-simulating
//! them, so its stdout is byte-identical to an uninterrupted run.
//!
//! The file is an append-only, in-tree binary log (the workspace builds
//! offline with no serde). Unlike [`crate::persist`], which checksums the
//! whole file at once, the journal checksums **each record separately** so
//! that a crash mid-append (SIGKILL, power loss) leaves a recoverable
//! file: the torn tail is detected and dropped, and every record before it
//! survives.
//!
//! ```text
//! header  magic b"CBJL"    4 bytes
//!         version u32 LE   bumped on any layout change
//! record  length u64 LE    payload byte count
//!         check  u64 LE    FNV-1a 64 over the payload
//!         payload          name str, digest u64, provenance str, output str
//! ...     (records repeat until end of file)
//! ```
//!
//! Strings are length-prefixed (u64 LE) UTF-8, as in the persist format.
//!
//! Failure modes follow the [`crate::persist`] discipline:
//!
//! * **missing file** — a normal fresh start ([`OpenOutcome::Fresh`]);
//! * **version mismatch** — an old/newer writer; the journal starts empty
//!   ([`OpenOutcome::VersionMismatch`]) and the foreign file is only
//!   overwritten on the next append, never on open;
//! * **torn tail** — the file ends inside a record (the crash artifact
//!   this format exists to survive); the valid prefix is kept and the
//!   tail's byte count is reported in [`OpenOutcome::Opened`];
//! * **corruption** — bad magic, a short header, or a fully-present
//!   record whose checksum or payload does not decode; the file is
//!   *rejected* with [`JournalError::Corrupt`] so the caller can surface
//!   it (silently resuming from a damaged journal could replay a wrong
//!   report).
//!
//! Compaction (dropping superseded records for re-run cells) and
//! post-recovery rewrites are atomic: a `.tmp` sibling is written and
//! renamed over the destination, exactly like cache saves. Appends are a
//! single `write_all` of the framed record, so an interrupted append can
//! only ever produce a torn tail, never a torn middle.

use crate::persist::fnv1a64;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: "C-Brain JournaL".
pub const MAGIC: [u8; 4] = *b"CBJL";

/// Current journal format version. Bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Number of superseded (stale) records tolerated before [`Journal::open`]
/// compacts the file automatically.
pub const COMPACT_SLACK: usize = 64;

/// Byte length of the file header (magic + version).
const HEADER_LEN: usize = 8;

/// Byte length of a record frame (length + checksum) before its payload.
const FRAME_LEN: usize = 16;

/// Error from opening, appending to, or compacting a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file exists but is not a valid journal (bad magic, short
    /// header, record checksum mismatch, undecodable payload).
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt(why) => write!(f, "corrupt journal: {why}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenOutcome {
    /// No file at the path; a normal fresh start.
    Fresh,
    /// Records were decoded. `dropped_bytes > 0` means the file ended in
    /// a torn record (crash mid-append) whose bytes were discarded.
    Opened {
        /// Number of distinct cells available for replay.
        cells: usize,
        /// Bytes of torn tail discarded during recovery (0 = clean file).
        dropped_bytes: u64,
    },
    /// The file was written by a different format version; the journal
    /// starts empty (no guessing at foreign layouts) and the file is only
    /// overwritten on the next append.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
    },
}

/// One completed experiment cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Stable cell name (e.g. `exp_table2`, or a `cbrain run` cell id
    /// derived from network/config/workload/batch).
    pub name: String,
    /// FNV-1a 64 digest of `output`, re-verified on replay (see
    /// [`digest`]).
    pub digest: u64,
    /// Execution provenance: jobs count, and in fleet mode the shard
    /// ring the compiles were scattered over. Informational; not part of
    /// the replayed output.
    pub provenance: String,
    /// The cell's full rendered report, replayed verbatim on resume.
    pub output: String,
}

/// FNV-1a 64 digest of a cell's output text, stored alongside it and
/// re-checked before the output is replayed.
pub fn digest(text: &str) -> u64 {
    fnv1a64(text.as_bytes())
}

// ---------------------------------------------------------------------
// Record codec: little-endian, length-prefixed strings.
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn corrupt<T>(why: impl Into<String>) -> Result<T, JournalError> {
    Err(JournalError::Corrupt(why.into()))
}

/// Bounds-checked decode cursor over a record payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => corrupt(format!(
                "record payload truncated at byte {} (wanted {n} more)",
                self.pos
            )),
        }
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, JournalError> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .or_else(|_| corrupt(format!("string length {len} exceeds usize")))?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| corrupt("string payload is not valid UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes one cell as a framed record: length + checksum + payload.
fn record_bytes(cell: &Cell) -> Vec<u8> {
    let mut payload = Vec::new();
    put_str(&mut payload, &cell.name);
    put_u64(&mut payload, cell.digest);
    put_str(&mut payload, &cell.provenance);
    put_str(&mut payload, &cell.output);
    let mut rec = Vec::with_capacity(FRAME_LEN + payload.len());
    put_u64(&mut rec, payload.len() as u64);
    put_u64(&mut rec, fnv1a64(&payload));
    rec.extend_from_slice(&payload);
    rec
}

/// Decodes one record payload back into a cell.
fn decode_cell(payload: &[u8]) -> Result<Cell, JournalError> {
    let mut c = Cursor::new(payload);
    let cell = Cell {
        name: c.str()?,
        digest: c.u64()?,
        provenance: c.str()?,
        output: c.str()?,
    };
    if !c.done() {
        return corrupt("trailing bytes inside a record payload");
    }
    Ok(cell)
}

fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

// ---------------------------------------------------------------------
// The journal.
// ---------------------------------------------------------------------

/// An on-disk run journal, held open for the life of a sweep.
///
/// Duplicate names are allowed on disk (a cell re-run without `--resume`
/// appends a superseding record); the in-memory index keeps the latest.
/// [`Journal::compact`] drops the stale ones, and [`Journal::open`] does
/// so automatically once more than [`COMPACT_SLACK`] accumulate.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    /// All decoded records, in append order (duplicates included).
    cells: Vec<Cell>,
    /// name -> index into `cells` of the *latest* record for that name.
    index: HashMap<String, usize>,
    /// When set, the next append rewrites the whole file atomically
    /// instead of appending: after a torn-tail recovery (the tail bytes
    /// are still on disk) or a version mismatch (foreign layout).
    rewrite_pending: bool,
}

impl Journal {
    /// Opens the journal at `path`, recovering a torn tail if the last
    /// append was interrupted, and compacting when more than
    /// [`COMPACT_SLACK`] stale records have accumulated.
    ///
    /// A missing file is a fresh start; a foreign format version yields
    /// an empty journal without touching the file. Corruption anywhere
    /// except the tail is an error — see the module docs for the full
    /// failure-mode split.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Self, OpenOutcome), JournalError> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok((Self::fresh(path, false), OpenOutcome::Fresh));
            }
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            // An empty file (e.g. `touch`ed by an operator) is a fresh
            // journal; the header is written with the first record.
            return Ok((Self::fresh(path, false), OpenOutcome::Fresh));
        }
        if bytes.len() < HEADER_LEN {
            return corrupt(format!(
                "file is {} bytes, shorter than the header",
                bytes.len()
            ));
        }
        if bytes[..4] != MAGIC {
            return corrupt("bad magic (not a journal file)");
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Ok((
                Self::fresh(path, true),
                OpenOutcome::VersionMismatch { found: version },
            ));
        }

        let mut cells = Vec::new();
        let mut pos = HEADER_LEN;
        let mut dropped_bytes = 0u64;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < FRAME_LEN {
                // Crash landed inside a record frame: torn tail.
                dropped_bytes = remaining as u64;
                break;
            }
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let check = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            let Some(len_usize) = usize::try_from(len)
                .ok()
                .filter(|l| *l <= remaining - FRAME_LEN)
            else {
                // The declared payload runs past end of file: torn tail.
                dropped_bytes = remaining as u64;
                break;
            };
            let payload = &bytes[pos + FRAME_LEN..pos + FRAME_LEN + len_usize];
            if fnv1a64(payload) != check {
                // The record is fully present yet damaged — this is disk
                // corruption, not a crash artifact, so reject the file.
                return corrupt(format!("record checksum mismatch at byte {pos}"));
            }
            cells.push(decode_cell(payload)?);
            pos += FRAME_LEN + len_usize;
        }

        let mut index = HashMap::new();
        for (i, cell) in cells.iter().enumerate() {
            index.insert(cell.name.clone(), i);
        }
        let mut journal = Self {
            path,
            cells,
            index,
            rewrite_pending: dropped_bytes > 0,
        };
        if journal.cells.len() - journal.index.len() > COMPACT_SLACK {
            journal.compact()?;
            journal.rewrite_pending = false;
        }
        let reg = cbrain_telemetry::Registry::global();
        reg.counter(
            "journal_records_replayed_total",
            "journal records decoded on open",
        )
        .add(journal.cells.len() as u64);
        if dropped_bytes > 0 {
            reg.counter(
                "journal_torn_truncations_total",
                "journal opens that dropped a torn tail",
            )
            .inc();
        }
        let outcome = OpenOutcome::Opened {
            cells: journal.index.len(),
            dropped_bytes,
        };
        Ok((journal, outcome))
    }

    /// Opens the journal, degrading every failure to a fresh start, and
    /// returns a one-line human-readable note for the operator (printed
    /// to stderr by the sweep drivers, never stdout — stdout is the
    /// byte-identical report channel).
    pub fn open_or_fresh(path: impl Into<PathBuf>) -> (Self, String) {
        let path = path.into();
        let shown = path.display().to_string();
        match Self::open(path.clone()) {
            Ok((j, OpenOutcome::Fresh)) => (j, format!("journal: starting fresh at {shown}")),
            Ok((
                j,
                OpenOutcome::Opened {
                    cells,
                    dropped_bytes,
                },
            )) => {
                let note = if dropped_bytes > 0 {
                    format!(
                        "journal: recovered {cells} cells from {shown} \
                         (dropped {dropped_bytes} torn bytes from an interrupted append)"
                    )
                } else {
                    format!("journal: loaded {cells} cells from {shown}")
                };
                (j, note)
            }
            Ok((j, OpenOutcome::VersionMismatch { found })) => (
                j,
                format!(
                    "journal: {shown} is format v{found}, this build writes v{FORMAT_VERSION}; \
                     starting fresh (file kept until the first append)"
                ),
            ),
            Err(e) => (
                Self::fresh(path, true),
                format!("journal: {e}; starting fresh (file kept until the first append)"),
            ),
        }
    }

    fn fresh(path: PathBuf, rewrite_pending: bool) -> Self {
        Self {
            path,
            cells: Vec::new(),
            index: HashMap::new(),
            rewrite_pending,
        }
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct cells available for replay.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the journal holds no cells.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Raw record count including superseded duplicates (compaction input
    /// size; equals [`Journal::len`] right after a compact).
    pub fn records(&self) -> usize {
        self.cells.len()
    }

    /// The latest record for `name`, if one exists.
    pub fn get(&self, name: &str) -> Option<&Cell> {
        self.index.get(name).map(|&i| &self.cells[i])
    }

    /// The latest record for `name`, only if its stored digest still
    /// matches its stored output — the check a resumer must pass before
    /// replaying the output instead of re-simulating the cell.
    pub fn replayable(&self, name: &str) -> Option<&Cell> {
        self.get(name).filter(|c| digest(&c.output) == c.digest)
    }

    /// Appends one completed cell. The record lands in a single
    /// `write_all`, so an interrupted append can only tear the tail.
    /// After a recovery or version mismatch the whole file is instead
    /// rewritten atomically (temp + rename), clearing the stale bytes.
    pub fn append(&mut self, cell: Cell) -> Result<(), JournalError> {
        cbrain_telemetry::Registry::global()
            .counter(
                "journal_records_appended_total",
                "journal records appended (including rewrite-path appends)",
            )
            .inc();
        if self.rewrite_pending {
            self.cells.push(cell.clone());
            self.index.insert(cell.name, self.cells.len() - 1);
            self.rewrite(self.cells.iter())?;
            self.rewrite_pending = false;
            return Ok(());
        }
        let rec = record_bytes(&cell);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(&header_bytes())?;
        }
        file.write_all(&rec)?;
        file.flush()?;
        self.cells.push(cell);
        let last = self.cells.len() - 1;
        self.index.insert(self.cells[last].name.clone(), last);
        Ok(())
    }

    /// Drops superseded records (keeping the latest per name, in first-
    /// appearance order) and rewrites the file atomically. Returns the
    /// number of stale records dropped. The rewrite is deterministic:
    /// the same surviving cells always produce the same bytes.
    pub fn compact(&mut self) -> Result<usize, JournalError> {
        let mut survivors: Vec<Cell> = Vec::with_capacity(self.index.len());
        let mut seen = HashMap::new();
        for cell in &self.cells {
            let latest = self.index[&cell.name];
            if self.cells[latest] == *cell && !seen.contains_key(&cell.name) {
                seen.insert(cell.name.clone(), survivors.len());
                survivors.push(self.cells[latest].clone());
            }
        }
        let dropped = self.cells.len() - survivors.len();
        self.rewrite(survivors.iter())?;
        self.cells = survivors;
        self.index = seen;
        self.rewrite_pending = false;
        Ok(dropped)
    }

    /// Writes header + the given records to a `.tmp` sibling and renames
    /// it over the journal path.
    fn rewrite<'a>(&self, cells: impl Iterator<Item = &'a Cell>) -> Result<(), JournalError> {
        let mut bytes = header_bytes().to_vec();
        for cell in cells {
            bytes.extend_from_slice(&record_bytes(cell));
        }
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbrain_journal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn cell(name: &str, output: &str) -> Cell {
        Cell {
            name: name.to_string(),
            digest: digest(output),
            provenance: "local;jobs=1".to_string(),
            output: output.to_string(),
        }
    }

    fn seed_journal(path: &Path) -> Vec<Cell> {
        let cells = vec![
            cell("exp_table2", "table 2 report\nwith lines\n"),
            cell("exp_fig8", "figure 8 report\n"),
            cell("exp_ablations", "ablations \u{2014} utf-8 dash\n"),
        ];
        let (mut j, outcome) = Journal::open(path).expect("open");
        assert_eq!(outcome, OpenOutcome::Fresh);
        for c in &cells {
            j.append(c.clone()).expect("append");
        }
        cells
    }

    #[test]
    fn round_trip_preserves_every_cell() {
        let dir = tmpdir("round_trip");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        let cells = seed_journal(&path);

        let (j, outcome) = Journal::open(&path).expect("reopen");
        assert_eq!(
            outcome,
            OpenOutcome::Opened {
                cells: 3,
                dropped_bytes: 0
            }
        );
        for c in &cells {
            assert_eq!(j.get(&c.name), Some(c));
            assert_eq!(j.replayable(&c.name), Some(c));
        }
        assert!(j.get("exp_missing").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let dir = tmpdir("missing");
        let path = dir.join("no-such-journal.bin");
        std::fs::remove_file(&path).ok();
        let (j, outcome) = Journal::open(&path).expect("open");
        assert_eq!(outcome, OpenOutcome::Fresh);
        assert!(j.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_starts_fresh_without_clobbering_the_file() {
        let dir = tmpdir("version");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        seed_journal(&path);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");

        let (mut j, outcome) = Journal::open(&path).expect("open");
        assert_eq!(
            outcome,
            OpenOutcome::VersionMismatch {
                found: FORMAT_VERSION + 1
            }
        );
        assert!(j.is_empty());
        // Open alone must not touch the foreign file...
        assert_eq!(std::fs::read(&path).expect("read"), bytes);
        // ...but the first append rewrites it at the current version.
        j.append(cell("exp_new", "new output\n")).expect("append");
        let (j2, outcome) = Journal::open(&path).expect("reopen");
        assert_eq!(
            outcome,
            OpenOutcome::Opened {
                cells: 1,
                dropped_bytes: 0
            }
        );
        assert!(j2.replayable("exp_new").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_recovered_at_every_cut() {
        // A SIGKILL mid-append leaves a prefix of the final record; the
        // open must keep every complete record and drop the tail, at any
        // cut point past the header. Cuts *inside* the header are a
        // corrupt file (nothing to recover).
        let dir = tmpdir("torn");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        let cells = seed_journal(&path);
        let bytes = std::fs::read(&path).expect("read");

        // Record boundaries, for deciding how many cells each cut keeps.
        let mut boundaries = vec![HEADER_LEN];
        let mut pos = HEADER_LEN;
        while pos < bytes.len() {
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
            pos += FRAME_LEN + len;
            boundaries.push(pos);
        }

        let step = bytes.len() / 37 + 1;
        for cut in (1..bytes.len()).step_by(step) {
            std::fs::write(&path, &bytes[..cut]).expect("write");
            if cut < HEADER_LEN {
                let err = Journal::open(&path).expect_err("short header must be corrupt");
                assert!(matches!(err, JournalError::Corrupt(_)), "cut {cut}: {err}");
                continue;
            }
            let (j, outcome) = Journal::open(&path).expect("recoverable");
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            let OpenOutcome::Opened {
                cells: kept,
                dropped_bytes,
            } = outcome
            else {
                panic!("cut {cut}: expected Opened, got {outcome:?}");
            };
            assert_eq!(kept, complete, "cut {cut}");
            let boundary = boundaries.contains(&cut);
            assert_eq!(dropped_bytes > 0, !boundary, "cut {cut}");
            for c in cells.iter().take(complete) {
                assert_eq!(j.replayable(&c.name), Some(c), "cut {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_recovery_rewrites_a_clean_file() {
        let dir = tmpdir("recover_append");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        seed_journal(&path);
        let bytes = std::fs::read(&path).expect("read");
        // Tear the last record in half.
        let last_start = {
            let mut pos = HEADER_LEN;
            let mut starts = vec![];
            while pos < bytes.len() {
                starts.push(pos);
                let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
                pos += FRAME_LEN + len;
            }
            *starts.last().unwrap()
        };
        let cut = last_start + FRAME_LEN + 3;
        std::fs::write(&path, &bytes[..cut]).expect("write");

        let (mut j, outcome) = Journal::open(&path).expect("recover");
        assert!(matches!(
            outcome,
            OpenOutcome::Opened { cells: 2, dropped_bytes } if dropped_bytes > 0
        ));
        // The next append must clear the torn bytes, not append past them.
        j.append(cell("exp_fresh", "fresh output\n"))
            .expect("append");
        let (j2, outcome) = Journal::open(&path).expect("reopen");
        assert_eq!(
            outcome,
            OpenOutcome::Opened {
                cells: 3,
                dropped_bytes: 0
            }
        );
        assert!(j2.replayable("exp_fresh").is_some());
        assert!(j2.replayable("exp_table2").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        seed_journal(&path);
        let good = std::fs::read(&path).expect("read");

        // A flipped bit inside the *first* record's payload: the record
        // is fully present, so this is disk damage, not a torn tail.
        let mut bad = good.clone();
        bad[HEADER_LEN + FRAME_LEN + 2] ^= 0x40;
        std::fs::write(&path, &bad).expect("write");
        let err = Journal::open(&path).expect_err("checksum must fail");
        let JournalError::Corrupt(why) = &err else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(why.contains("checksum"), "{why}");

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).expect("write");
        assert!(matches!(
            Journal::open(&path),
            Err(JournalError::Corrupt(_))
        ));

        // A record whose payload decodes short of its declared length:
        // recompute the checksum so the frame passes and only the decode
        // can object.
        let mut payload = Vec::new();
        put_str(&mut payload, "name");
        put_u64(&mut payload, 7);
        put_str(&mut payload, "prov");
        put_str(&mut payload, "out");
        payload.extend_from_slice(b"trailing-garbage");
        let mut bad = good.clone();
        put_u64(&mut bad, payload.len() as u64);
        put_u64(&mut bad, fnv1a64(&payload));
        bad.extend_from_slice(&payload);
        std::fs::write(&path, &bad).expect("write");
        let err = Journal::open(&path).expect_err("trailing bytes must fail");
        let JournalError::Corrupt(why) = &err else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(why.contains("trailing"), "{why}");

        // open_or_fresh degrades all of the above to an empty journal
        // with an explanatory note, and keeps the damaged file on disk.
        let (j, note) = Journal::open_or_fresh(&path);
        assert!(j.is_empty());
        assert!(note.contains("corrupt journal"), "{note}");
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayable_rejects_a_digest_mismatch() {
        let dir = tmpdir("digest");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).expect("open");
        let mut c = cell("exp_table2", "the real output\n");
        c.digest ^= 1;
        j.append(c).expect("append");
        let (j, _) = Journal::open(&path).expect("reopen");
        assert!(j.get("exp_table2").is_some());
        assert!(j.replayable("exp_table2").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_keeps_the_latest_record_and_is_deterministic() {
        let dir = tmpdir("compact");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).expect("open");
        j.append(cell("exp_table2", "stale v1\n")).expect("append");
        j.append(cell("exp_fig8", "fig8\n")).expect("append");
        j.append(cell("exp_table2", "fresh v2\n")).expect("append");
        assert_eq!(j.records(), 3);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get("exp_table2").unwrap().output, "fresh v2\n");

        let dropped = j.compact().expect("compact");
        assert_eq!(dropped, 1);
        assert_eq!(j.records(), 2);
        assert_eq!(j.get("exp_table2").unwrap().output, "fresh v2\n");
        let first = std::fs::read(&path).expect("read");

        // Compacting an already-compact journal is a no-op byte-wise.
        assert_eq!(j.compact().expect("compact"), 0);
        assert_eq!(std::fs::read(&path).expect("read"), first);

        // The compacted file round-trips.
        let (j2, outcome) = Journal::open(&path).expect("reopen");
        assert_eq!(
            outcome,
            OpenOutcome::Opened {
                cells: 2,
                dropped_bytes: 0
            }
        );
        assert_eq!(j2.get("exp_table2").unwrap().output, "fresh v2\n");
        assert_eq!(j2.get("exp_fig8").unwrap().output, "fig8\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_auto_compacts_past_the_slack_threshold() {
        let dir = tmpdir("auto_compact");
        let path = dir.join("journal.bin");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).expect("open");
        for i in 0..=(COMPACT_SLACK + 1) {
            j.append(cell("exp_table2", &format!("v{i}\n")))
                .expect("append");
        }
        j.append(cell("exp_fig8", "fig8\n")).expect("append");
        drop(j);

        let (j, outcome) = Journal::open(&path).expect("reopen");
        assert_eq!(
            outcome,
            OpenOutcome::Opened {
                cells: 2,
                dropped_bytes: 0
            }
        );
        assert_eq!(j.records(), 2, "open must have compacted");
        assert_eq!(
            j.get("exp_table2").unwrap().output,
            format!("v{}\n", COMPACT_SLACK + 1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
