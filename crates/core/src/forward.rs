//! Data-accurate whole-network inference under the adaptive policy.
//!
//! The performance [`crate::Runner`] counts cycles without touching
//! values; this module is its functional twin: it carries a real tensor
//! through every layer, executing each convolution with the *scheme
//! Algorithm 2 selects* (kernel-partitioned, unrolled, improved-inter or
//! plain sliding window), applying ReLU and pooling, down to the
//! classifier — and proves the adaptive pipeline is numerically identical
//! to a plain reference forward pass.
//!
//! Only sequential networks are supported (each layer consumes its
//! predecessor's output); the zoo's AlexNet, VGG-16 and NiN qualify,
//! GoogLeNet's branches do not.

use crate::adaptive::{scheme_for, Policy};
use crate::functional::{improved_inter_forward, partition_forward, unrolled_forward};
use cbrain_compiler::Scheme;
use cbrain_model::{
    reference, ConvWeights, Layer, LayerKind, ModelError, Network, Tensor3, TensorShape,
};
use cbrain_sim::AcceleratorConfig;
use std::fmt;

/// Error from a functional forward pass.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardError {
    /// The network is not sequential: a layer's input shape does not match
    /// its predecessor's output.
    NotSequential {
        /// Name of the offending layer.
        layer: String,
        /// Shape produced by the previous layer.
        produced: TensorShape,
        /// Shape the layer expects.
        expected: TensorShape,
    },
    /// Wrapped model error.
    Model(ModelError),
}

impl fmt::Display for ForwardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardError::NotSequential {
                layer,
                produced,
                expected,
            } => write!(
                f,
                "network is not sequential at `{layer}`: got {produced}, expected {expected}"
            ),
            ForwardError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ForwardError {}

impl From<ModelError> for ForwardError {
    fn from(e: ModelError) -> Self {
        ForwardError::Model(e)
    }
}

/// Per-layer weights for a whole network.
#[derive(Debug, Clone)]
pub struct NetworkWeights {
    convs: Vec<(String, ConvWeights, Vec<f32>)>,
    fcs: Vec<(String, Vec<f32>, Vec<f32>)>,
}

impl NetworkWeights {
    /// Deterministic pseudo-random weights for every parameterized layer.
    /// Values are scaled down with fan-in so deep activations stay in a
    /// numerically friendly range.
    ///
    /// # Panics
    ///
    /// Panics if the network contains invalid layers (zoo networks never
    /// do).
    pub fn random(net: &Network, seed: u64) -> Self {
        let mut convs = Vec::new();
        let mut fcs = Vec::new();
        for (i, layer) in net.layers().iter().enumerate() {
            let lseed = seed.wrapping_add(i as u64 * 7919);
            match &layer.kind {
                LayerKind::Conv(p) => {
                    let fan_in = (p.in_maps_per_group() * p.kernel * p.kernel) as f32;
                    let scale = (2.0 / fan_in).sqrt();
                    let mut w = ConvWeights::random(p, lseed);
                    w = scale_conv(w, p, scale);
                    let bias = vec![0.01; p.out_maps];
                    convs.push((layer.name.clone(), w, bias));
                }
                LayerKind::FullyConnected(p) => {
                    let scale = (2.0 / p.in_features as f32).sqrt();
                    let w: Vec<f32> =
                        Tensor3::random(TensorShape::new(1, p.out_features, p.in_features), lseed)
                            .into_vec()
                            .into_iter()
                            .map(|v| v * scale * 0.5)
                            .collect();
                    let bias = vec![0.01; p.out_features];
                    fcs.push((layer.name.clone(), w, bias));
                }
                LayerKind::Pool(_) | LayerKind::Eltwise(_) => {}
            }
        }
        Self { convs, fcs }
    }

    fn conv(&self, name: &str) -> &(String, ConvWeights, Vec<f32>) {
        self.convs
            .iter()
            .find(|(n, _, _)| n == name)
            .expect("weights generated for this network")
    }

    fn fc(&self, name: &str) -> &(String, Vec<f32>, Vec<f32>) {
        self.fcs
            .iter()
            .find(|(n, _, _)| n == name)
            .expect("weights generated for this network")
    }
}

fn scale_conv(w: ConvWeights, p: &cbrain_model::ConvParams, scale: f32) -> ConvWeights {
    let mut out = ConvWeights::zeros(p);
    for o in 0..p.out_maps {
        for i in 0..p.in_maps_per_group() {
            for ky in 0..p.kernel {
                for kx in 0..p.kernel {
                    *out.at_mut(o, i, ky, kx) = w.at(o, i, ky, kx) * scale * 0.5;
                }
            }
        }
    }
    out
}

/// Result of a functional forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// The classifier output (or last layer's activations, flattened).
    pub output: Vec<f32>,
    /// The scheme each conv layer executed under (None for pool/fc).
    pub schemes: Vec<(String, Option<Scheme>)>,
}

fn conv_with_scheme(
    input: &Tensor3,
    weights: &ConvWeights,
    bias: &[f32],
    params: &cbrain_model::ConvParams,
    scheme: Scheme,
) -> Result<Tensor3, ModelError> {
    match scheme {
        Scheme::Inter => reference::conv_forward(input, weights, Some(bias), params),
        Scheme::InterImproved => improved_inter_forward(input, weights, Some(bias), params),
        Scheme::Intra => unrolled_forward(input, weights, Some(bias), params),
        Scheme::Partition => partition_forward(input, weights, Some(bias), params),
    }
}

/// Runs a sequential network on real data, executing each convolution
/// with the scheme `policy` selects ([`Policy::Oracle`] resolves as
/// adpa-2, matching [`crate::adaptive::scheme_for`]). ReLU follows every
/// conv and FC layer except the classifier.
///
/// # Errors
///
/// Returns [`ForwardError::NotSequential`] for branchy networks and
/// propagates model errors.
///
/// # Examples
///
/// ```
/// use cbrain::forward::{forward, NetworkWeights};
/// use cbrain::Policy;
/// use cbrain_model::{NetworkBuilder, Tensor3, TensorShape};
/// use cbrain_sim::AcceleratorConfig;
///
/// let net = NetworkBuilder::new("tiny", TensorShape::new(3, 16, 16))
///     .conv("c1", 8, 5, 2, 0)
///     .fully_connected("head", 4)
///     .build()?;
/// let weights = NetworkWeights::random(&net, 1);
/// let input = Tensor3::random(net.input(), 2);
/// let cfg = AcceleratorConfig::paper_16_16();
/// let out = forward(&net, &input, &weights, Policy::Adaptive { improved_inter: true }, &cfg)?;
/// assert_eq!(out.output.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn forward(
    net: &Network,
    input: &Tensor3,
    weights: &NetworkWeights,
    policy: Policy,
    cfg: &AcceleratorConfig,
) -> Result<ForwardResult, ForwardError> {
    let mut activations = input.clone();
    let mut flat: Option<Vec<f32>> = None;
    let mut schemes = Vec::new();
    let n_layers = net.layers().len();

    // Residual skip operands: outputs of layers some later eltwise layer
    // names as its `skip` source, kept alive until consumed.
    let skip_sources: std::collections::HashSet<&str> = net
        .layers()
        .iter()
        .filter_map(|l| l.skip.as_deref())
        .collect();
    let mut stored: std::collections::HashMap<String, Tensor3> = std::collections::HashMap::new();

    for (i, layer) in net.layers().iter().enumerate() {
        let is_last = i + 1 == n_layers;
        check_sequential(layer, &activations, flat.as_deref())?;
        match &layer.kind {
            LayerKind::Conv(p) => {
                let scheme = scheme_for(policy, p, cfg);
                let (_, w, b) = weights.conv(&layer.name);
                let mut out = conv_with_scheme(&activations, w, b, p, scheme)?;
                if !is_last {
                    out.relu_in_place();
                }
                activations = out;
                schemes.push((layer.name.clone(), Some(scheme)));
            }
            LayerKind::Pool(p) => {
                activations = reference::pool_forward(&activations, p)?;
                schemes.push((layer.name.clone(), None));
            }
            LayerKind::Eltwise(p) => {
                let skip_name = layer.skip.as_deref().expect("validated eltwise has a skip");
                let skip = stored
                    .get(skip_name)
                    .expect("validated skip source ran earlier");
                let mut out = reference::eltwise_forward(&activations, skip, p.op)?;
                if !is_last {
                    out.relu_in_place();
                }
                activations = out;
                schemes.push((layer.name.clone(), None));
            }
            LayerKind::FullyConnected(p) => {
                let input_vec: Vec<f32> = match flat.take() {
                    Some(v) => v,
                    None => activations.as_slice().to_vec(),
                };
                let (_, w, b) = weights.fc(&layer.name);
                let mut out = reference::fc_forward(&input_vec, w, Some(b), p)?;
                if !is_last {
                    cbrain_model::simd::relu(&mut out);
                }
                flat = Some(out);
                schemes.push((layer.name.clone(), None));
            }
        }
        if skip_sources.contains(layer.name.as_str()) {
            stored.insert(layer.name.clone(), activations.clone());
        }
    }

    let output = match flat {
        Some(v) => v,
        None => activations.as_slice().to_vec(),
    };
    Ok(ForwardResult { output, schemes })
}

fn check_sequential(
    layer: &Layer,
    activations: &Tensor3,
    flat: Option<&[f32]>,
) -> Result<(), ForwardError> {
    let produced = match flat {
        Some(v) => TensorShape::flat(v.len()),
        None => activations.shape(),
    };
    let ok = match &layer.kind {
        LayerKind::FullyConnected(p) => produced.elems() == p.in_features,
        _ => produced == layer.input,
    };
    if ok {
        Ok(())
    } else {
        Err(ForwardError::NotSequential {
            layer: layer.name.clone(),
            produced,
            expected: layer.input,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbrain_model::NetworkBuilder;

    fn tiny_net() -> Network {
        NetworkBuilder::new("tiny", TensorShape::new(3, 24, 24))
            .conv("stem", 8, 5, 2, 0) // Din=3 < 16 -> partition
            .pool_max("pool", 2, 2)
            .conv("mid", 16, 3, 1, 1) // Din=8 < 16 -> partition
            .conv("deep", 20, 1, 1, 0) // 1x1 -> inter(-improved)
            .fully_connected("head", 10)
            .build()
            .unwrap()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn adaptive_forward_matches_reference_forward() {
        let net = tiny_net();
        let weights = NetworkWeights::random(&net, 42);
        let input = Tensor3::random(net.input(), 7);
        let cfg = AcceleratorConfig::paper_16_16();

        let reference_run = forward(
            &net,
            &input,
            &weights,
            Policy::Fixed(Scheme::Inter), // plain reference path
            &cfg,
        )
        .unwrap();
        for policy in [
            Policy::Adaptive {
                improved_inter: true,
            },
            Policy::Adaptive {
                improved_inter: false,
            },
            Policy::Fixed(Scheme::Partition),
            Policy::Fixed(Scheme::Intra),
        ] {
            let run = forward(&net, &input, &weights, policy, &cfg).unwrap();
            let diff = max_diff(&run.output, &reference_run.output);
            assert!(diff < 1e-3, "{policy}: diff={diff}");
        }
    }

    #[test]
    fn adaptive_run_uses_the_expected_schemes() {
        let net = tiny_net();
        let weights = NetworkWeights::random(&net, 1);
        let input = Tensor3::random(net.input(), 2);
        let cfg = AcceleratorConfig::paper_16_16();
        let run = forward(
            &net,
            &input,
            &weights,
            Policy::Adaptive {
                improved_inter: true,
            },
            &cfg,
        )
        .unwrap();
        let by_name: std::collections::HashMap<_, _> = run.schemes.iter().cloned().collect();
        assert_eq!(by_name["stem"], Some(Scheme::Partition));
        assert_eq!(by_name["mid"], Some(Scheme::Partition));
        assert_eq!(by_name["deep"], Some(Scheme::InterImproved));
        assert_eq!(by_name["pool"], None);
    }

    #[test]
    fn relu_applied_between_layers() {
        // With all-negative biases and zero weights... simpler: run and
        // check intermediate effect indirectly: a network whose first conv
        // output is forced negative must produce the pure-bias head value.
        let net = NetworkBuilder::new("neg", TensorShape::new(1, 4, 4))
            .conv("c1", 2, 3, 1, 0)
            .fully_connected("head", 3)
            .build()
            .unwrap();
        let mut weights = NetworkWeights::random(&net, 5);
        // Force c1 output negative via bias.
        weights.convs[0].2 = vec![-100.0, -100.0];
        let input = Tensor3::random(net.input(), 6);
        let run = forward(
            &net,
            &input,
            &weights,
            Policy::Adaptive {
                improved_inter: true,
            },
            &AcceleratorConfig::paper_16_16(),
        )
        .unwrap();
        // ReLU zeroed everything, so the head output is exactly its bias.
        for v in &run.output {
            assert!((v - 0.01).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn sequential_zoo_networks_run_end_to_end() {
        // NiN is the smallest all-sequential zoo net; scaled input keeps
        // the test quick? NiN input is fixed; run it for real (release CI
        // budget) — but in debug keep to the tiny net plus AlexNet's
        // first two layers via a truncated builder instead.
        let net = NetworkBuilder::new("alexstub", TensorShape::new(3, 63, 63))
            .conv("conv1", 16, 11, 4, 0)
            .pool_max("pool1", 3, 2)
            .conv_grouped("conv2", 32, 5, 1, 2, 2)
            .fully_connected("head", 10)
            .build()
            .unwrap();
        let weights = NetworkWeights::random(&net, 11);
        let input = Tensor3::random(net.input(), 12);
        let cfg = AcceleratorConfig::paper_16_16();
        let a = forward(
            &net,
            &input,
            &weights,
            Policy::Adaptive {
                improved_inter: true,
            },
            &cfg,
        )
        .unwrap();
        let b = forward(&net, &input, &weights, Policy::Fixed(Scheme::Inter), &cfg).unwrap();
        assert!(max_diff(&a.output, &b.output) < 1e-3);
        assert_eq!(a.output.len(), 10);
    }

    #[test]
    fn branchy_network_is_rejected() {
        use cbrain_model::zoo;
        let net = zoo::googlenet();
        let weights = NetworkWeights::random(&net, 3);
        let input = Tensor3::random(net.input(), 4);
        let err = forward(
            &net,
            &input,
            &weights,
            Policy::Adaptive {
                improved_inter: true,
            },
            &AcceleratorConfig::paper_16_16(),
        )
        .unwrap_err();
        assert!(matches!(err, ForwardError::NotSequential { .. }));
    }
}
